// Determinism regression for the sharded engine driving the full stack:
// an RpcFabric (smt_hw, the richest datapath — TLS records, NIC TX
// offload, coalesced RX, softirq charging) with its two hosts on TWO
// different shards must produce byte-identical counters run-to-run, even
// though the shards execute on concurrent OS threads and every packet
// hop crosses the shard boundary through the mailbox. This locks in the
// cross-shard ordering contract from netsim/shard.hpp: (when, src, seq)
// mailbox delivery between windows, never mid-window.
//
// Also pinned here: a one-shard engine is byte-identical to the plain
// single-loop fabric (the --shards 1 contract), and the exact shape of
// the cross-shard-count guarantee — a 2-shard run performs identical
// WORK to the 1-shard run (same completions, same frames, same bytes,
// same records) even though its micro-schedule may legitimately differ:
// with 24 concurrent channels and interrupt coalescing, same-timestamp
// local/remote ties at a host do occur, and the (when, seq) tie then
// resolves by scheduling order, which sharding changes. That caveat is
// the one docs/determinism.md documents; this test demonstrates it is
// bounded to micro-ordering, never to what the simulation computes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "apps/rpc.hpp"

namespace smt::apps {
namespace {

struct HostSnapshot {
  std::uint64_t app_busy_ns = 0;
  std::uint64_t softirq_busy_ns = 0;
  std::uint64_t irq_busy_ns = 0;
  std::vector<sim::RxRingStats> rings;
  sim::NicCounters nic;

  friend bool operator==(const HostSnapshot&, const HostSnapshot&) = default;
};

struct RunSnapshot {
  SimTime last_completion = 0;  // virtual time of the final RPC completion
  std::size_t completed = 0;
  std::uint64_t rtt_sum_ns = 0;
  HostSnapshot client, server;

  friend bool operator==(const RunSnapshot&, const RunSnapshot&) = default;
};

HostSnapshot snapshot_host(stack::Host& host) {
  HostSnapshot snap;
  snap.app_busy_ns = host.total_app_busy_ns();
  snap.softirq_busy_ns = host.total_softirq_busy_ns();
  snap.irq_busy_ns = host.total_irq_busy_ns();
  for (std::size_t r = 0; r < host.nic().rx_ring_count(); ++r) {
    snap.rings.push_back(host.nic().rx_ring_stats(r));
  }
  snap.nic = host.nic().counters();
  return snap;
}

// Closed-loop smt_hw workload. `shards == 0` uses the plain single-loop
// RpcFabric constructor; otherwise the fabric is placed on a ShardedEngine
// with the client on shard 0 and the server on shard `shards - 1` (i.e.
// same shard when shards == 1, a true cross-shard link when shards == 2).
RunSnapshot run_workload(std::size_t shards) {
  RpcFabricConfig config;
  config.kind = TransportKind::smt_hw;
  config.propagation = usec(2);  // >= engine lookahead, cross-shard safe

  std::optional<sim::ShardedEngine> engine;
  std::unique_ptr<RpcFabric> fabric;
  if (shards == 0) {
    fabric = std::make_unique<RpcFabric>(config);
  } else {
    engine.emplace(shards, config.propagation);
    fabric = std::make_unique<RpcFabric>(config, *engine, 0, shards - 1);
  }

  constexpr std::size_t kConcurrency = 24;
  constexpr std::size_t kOps = 600;
  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < kConcurrency; ++i) {
    channels.push_back(fabric->make_channel(i));
  }
  RunSnapshot snap;
  std::size_t issued = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    if (issued >= kOps) return;
    ++issued;
    channels[slot]->call(Bytes(512, 0x5a), 2048,
                         [&, slot](SimDuration rtt, Bytes) {
                           ++snap.completed;
                           snap.rtt_sum_ns += std::uint64_t(rtt);
                           // loop().now() mid-callback IS the completion
                           // timestamp, valid in sharded and plain runs.
                           snap.last_completion = fabric->loop().now();
                           issue(slot);
                         });
  };
  for (std::size_t i = 0; i < kConcurrency; ++i) issue(i);
  if (engine) {
    engine->run();
  } else {
    fabric->loop().run();
  }

  snap.client = snapshot_host(fabric->client_host());
  snap.server = snapshot_host(fabric->server_host());
  return snap;
}

TEST(ShardDeterminism, TwoShardRunToRunByteIdentical) {
  const RunSnapshot first = run_workload(2);
  const RunSnapshot second = run_workload(2);

  ASSERT_EQ(first.completed, 600u);
  // The run must actually cross the shard boundary, or this guards nothing.
  EXPECT_GT(first.server.nic.rx_interrupts, 0u);

  EXPECT_EQ(first.last_completion, second.last_completion);
  EXPECT_EQ(first.rtt_sum_ns, second.rtt_sum_ns);
  EXPECT_TRUE(first.client == second.client) << "client counters diverged";
  EXPECT_TRUE(first.server == second.server) << "server counters diverged";
  EXPECT_TRUE(first == second);
}

TEST(ShardDeterminism, OneShardEngineMatchesPlainFabric) {
  // The --shards 1 contract: an engine-hosted fabric with both hosts on
  // the single shard is byte-identical to the engineless fabric — same
  // events, same order, same timestamps, same counters.
  const RunSnapshot plain = run_workload(0);
  const RunSnapshot engine1 = run_workload(1);

  ASSERT_EQ(plain.completed, 600u);
  EXPECT_TRUE(plain == engine1);
}

TEST(ShardDeterminism, TwoShardPerformsIdenticalWorkToOneShard) {
  // Cross-SHARD-COUNT guarantee (weaker than run-to-run determinism,
  // which is exact per shard count): the mailbox delivers every
  // cross-shard packet at exactly the arrival time the single-loop
  // schedule would have used, so the simulation performs identical work —
  // every RPC completes, every frame and record is identical. What MAY
  // shift is micro-ordering: this workload does produce same-timestamp
  // local/remote ties at the hosts (interrupt coalescing + 24 concurrent
  // channels), so batching-sensitive counters (interrupt counts, busy-ns,
  // the final timestamp) can differ by the tie resolution — byte-exact
  // 1-vs-N equality for tie-free scenarios is pinned separately in
  // netsim/shard_test.cpp.
  const RunSnapshot one = run_workload(1);
  const RunSnapshot two = run_workload(2);

  EXPECT_EQ(one.completed, two.completed);
  auto expect_same_work = [](const HostSnapshot& a, const HostSnapshot& b,
                             const char* side) {
    EXPECT_EQ(a.nic.segments, b.nic.segments) << side;
    EXPECT_EQ(a.nic.packets, b.nic.packets) << side;
    EXPECT_EQ(a.nic.records_encrypted, b.nic.records_encrypted) << side;
    EXPECT_EQ(a.nic.out_of_sequence_records, b.nic.out_of_sequence_records)
        << side;
    EXPECT_EQ(a.nic.rx_frames, b.nic.rx_frames) << side;
    EXPECT_EQ(a.nic.rx_delivered, b.nic.rx_delivered) << side;
    EXPECT_EQ(a.nic.rx_dropped, b.nic.rx_dropped) << side;
    EXPECT_EQ(a.nic.context_misses, b.nic.context_misses) << side;
  };
  expect_same_work(one.client, two.client, "client");
  expect_same_work(one.server, two.server, "server");
  // The schedules stay close even where they are not identical: the tie
  // re-orderings shift the final completion by at most a handful of
  // coalescing hold-offs, not by any macroscopic amount.
  const SimTime hi = std::max(one.last_completion, two.last_completion);
  const SimTime lo = std::min(one.last_completion, two.last_completion);
  EXPECT_LT(hi - lo, hi / 100) << "virtual end times diverged by >1%";
}

}  // namespace
}  // namespace smt::apps
