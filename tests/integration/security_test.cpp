// Security-property integration tests mapping §6 of the paper to
// executable checks against an in-network attacker on the simulated link.
#include <gtest/gtest.h>

#include "../common/topology_helpers.hpp"
#include "common/rng.hpp"
#include "smt/endpoint.hpp"

namespace smt::proto {
namespace {

struct AttackBed {
  sim::EventLoop loop;
  std::unique_ptr<stack::Topology> topology;
  stack::Host* client_host = nullptr;
  stack::Host* server_host = nullptr;
  sim::Link* link = nullptr;
  std::unique_ptr<SmtEndpoint> client;
  std::unique_ptr<SmtEndpoint> server;
  std::vector<std::pair<std::uint64_t, Bytes>> delivered;

  AttackBed() {
    topology = test::two_host_topology(loop);
    client_host = &topology->host(0);
    server_host = &topology->host(1);
    link = topology->direct_link();
    client = std::make_unique<SmtEndpoint>(*client_host, 1000);
    server = std::make_unique<SmtEndpoint>(*server_host, 80);
    tls::TrafficKeys tx{Bytes(16, 0x61), Bytes(12, 0x62)};
    tls::TrafficKeys rx{Bytes(16, 0x63), Bytes(12, 0x64)};
    EXPECT_TRUE(client
                    ->register_session({2, 80},
                                       tls::CipherSuite::aes_128_gcm_sha256,
                                       tx, rx)
                    .ok());
    EXPECT_TRUE(server
                    ->register_session({1, 1000},
                                       tls::CipherSuite::aes_128_gcm_sha256,
                                       rx, tx)
                    .ok());
    server->set_on_message([this](SmtEndpoint::MessageMeta meta, Bytes data) {
      delivered.emplace_back(meta.msg_id, std::move(data));
    });
  }

  /// Installs a man-in-the-middle transform on client->server packets.
  void mitm(std::function<void(sim::Packet&)> transform) {
    link->a2b().set_receiver(
        [this, transform = std::move(transform)](sim::Packet pkt) {
          transform(pkt);
          server_host->nic().receive(std::move(pkt));
        });
  }
};

TEST(Security, InjectionWithForgedPayloadRejected) {
  // §6.1 non-replayability: a new message ID with attacker-crafted payload
  // is detected at decryption, like TLS/TCP detects altered segments.
  AttackBed bed;
  // Capture one legitimate packet, then inject a forged message based on it.
  bool injected = false;
  bed.mitm([&](sim::Packet& pkt) {
    if (pkt.hdr.type == sim::PacketType::data && !injected) {
      injected = true;
      sim::Packet forged = pkt;
      forged.hdr.msg_id = 999;  // unseen ID: passes the replay filter
      for (auto& b : forged.payload.mutate()) b ^= 0x5a;  // attacker bytes
      bed.loop.schedule(usec(5), [&bed, forged]() mutable {
        bed.server_host->nic().receive(std::move(forged));
      });
    }
  });
  bed.client->send_message({2, 80}, Bytes(100, 0x01));
  bed.loop.run();
  ASSERT_EQ(bed.delivered.size(), 1u);  // only the genuine message
  EXPECT_EQ(bed.server->stats().decrypt_failures, 1u);
}

TEST(Security, HeaderManipulationCannotRedirectRecords) {
  // Flipping the plaintext message ID on a genuine packet moves it to a
  // different record space, where authentication fails (§4.4.1).
  AttackBed bed;
  bed.mitm([](sim::Packet& pkt) {
    if (pkt.hdr.type == sim::PacketType::data) pkt.hdr.msg_id += 1;
  });
  bed.client->send_message({2, 80}, Bytes(200, 0x02));
  bed.loop.run();
  EXPECT_TRUE(bed.delivered.empty());
  EXPECT_EQ(bed.server->stats().decrypt_failures, 1u);
}

TEST(Security, TruncationDetected) {
  // Cutting bytes out of a record leaves an unparseable/unauthenticated
  // wire message. (Transport-level lengths are adjusted so reassembly
  // completes and the crypto layer is what rejects it.)
  AttackBed bed;
  bed.mitm([](sim::Packet& pkt) {
    if (pkt.hdr.type == sim::PacketType::data && pkt.payload.size() > 32) {
      pkt.payload.truncate(pkt.payload.size() - 16);  // drop the tag bytes
      pkt.hdr.msg_len -= 16;
    }
  });
  bed.client->send_message({2, 80}, Bytes(300, 0x03));
  bed.loop.run();
  EXPECT_TRUE(bed.delivered.empty());
  EXPECT_EQ(bed.delivered.size(), 0u);
}

TEST(Security, CrossSessionInjectionRejected) {
  // Ciphertext from one session replayed into another (different keys)
  // must fail — message IDs overlap between sessions but keys differ.
  AttackBed bed_a;
  std::vector<sim::Packet> captured;
  bed_a.link->a2b().set_receiver([&](sim::Packet pkt) {
    captured.push_back(pkt);
    bed_a.server_host->nic().receive(std::move(pkt));
  });
  bed_a.client->send_message({2, 80}, Bytes(100, 0x04));
  bed_a.loop.run();
  ASSERT_FALSE(captured.empty());

  AttackBed bed_b;  // fresh bed; note: same addresses, DIFFERENT keys? No —
  // AttackBed uses fixed keys, so flip them to make session B distinct.
  tls::TrafficKeys other_tx{Bytes(16, 0x71), Bytes(12, 0x72)};
  tls::TrafficKeys other_rx{Bytes(16, 0x73), Bytes(12, 0x74)};
  ASSERT_TRUE(bed_b.server
                  ->rekey_session({1, 1000},
                                  tls::CipherSuite::aes_128_gcm_sha256,
                                  other_rx, other_tx)
                  .ok());
  for (auto& pkt : captured) bed_b.server_host->nic().receive(pkt);
  bed_b.loop.run();
  EXPECT_TRUE(bed_b.delivered.empty());
  EXPECT_GT(bed_b.server->stats().decrypt_failures, 0u);
}

TEST(Security, MassReplayCampaignAllDropped) {
  // Replay every data packet 3x with delays beyond the transport dedup
  // window; the SMT filter must drop every duplicate message without
  // double delivery, across 50 messages.
  AttackBed bed;
  Rng rng(4242);
  bed.link->a2b().set_receiver([&](sim::Packet pkt) {
    if (pkt.hdr.type == sim::PacketType::data) {
      for (int copy = 1; copy <= 3; ++copy) {
        sim::Packet dup = pkt;
        // Past the transport dedup window (30 ms, covering the sender
        // retry horizon) so the replays reach the SMT filter itself.
        bed.loop.schedule(msec(35 + 6 * copy) + SimDuration(rng.next_below(1000)),
                          [&bed, dup]() mutable {
                            bed.server_host->nic().receive(std::move(dup));
                          });
      }
    }
    bed.server_host->nic().receive(std::move(pkt));
  });
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(bed.client->send_message({2, 80}, Bytes(64, std::uint8_t(i))).ok());
  }
  bed.loop.run();
  EXPECT_EQ(bed.delivered.size(), 50u);
  std::set<std::uint64_t> ids;
  for (const auto& [id, data] : bed.delivered) ids.insert(id);
  EXPECT_EQ(ids.size(), 50u);  // no double delivery of any message
  EXPECT_GT(bed.server->stats().replays_dropped, 0u);
}

TEST(Security, EavesdropperSeesOnlyMetadataAndCiphertext) {
  // §4.3/§6.2: the wire exposes message ID/length (by design, for INC)
  // but never plaintext.
  AttackBed bed;
  Bytes wiretap;
  std::vector<std::uint64_t> observed_ids;
  bed.link->a2b().set_receiver([&](sim::Packet pkt) {
    append(wiretap, pkt.payload);
    if (pkt.hdr.type == sim::PacketType::data)
      observed_ids.push_back(pkt.hdr.msg_id);
    bed.server_host->nic().receive(std::move(pkt));
  });
  const Bytes secret = to_bytes(std::string_view(
      "TOP-SECRET: the database password is hunter2 hunter2 hunter2"));
  bed.client->send_message({2, 80}, secret);
  bed.loop.run();
  ASSERT_EQ(bed.delivered.size(), 1u);
  EXPECT_EQ(bed.delivered[0].second, secret);
  // Plaintext absent from the wire...
  EXPECT_EQ(std::search(wiretap.begin(), wiretap.end(), secret.begin(),
                        secret.end()),
            wiretap.end());
  // ...but message identity is visible (deliberately, §7 INC).
  ASSERT_FALSE(observed_ids.empty());
  EXPECT_EQ(observed_ids[0], bed.delivered[0].first);
}

}  // namespace
}  // namespace smt::proto
