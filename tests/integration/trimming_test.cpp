// §7 "In-network compute compatibility" / NDP trimming: SMT traffic
// through a congested switch. Trimmed stubs carry plaintext transport
// metadata, so receivers re-request the exact missing bytes immediately —
// the property that breaks if headers were encrypted (QUIC-style, §6.3).
#include <gtest/gtest.h>

#include "../common/topology_helpers.hpp"
#include "smt/endpoint.hpp"

namespace smt::proto {
namespace {

// Two hosts hanging off one ToR (the builder's via_tor shape) with an
// oversubscribed switch: hosts inject at 100 Gb/s, the switch drains at
// 20 Gb/s — bursts build the queue that congestion trimming targets.
struct SwitchedBed {
  sim::EventLoop loop;
  std::unique_ptr<stack::Topology> topology;
  sim::Switch* sw = nullptr;
  std::unique_ptr<SmtEndpoint> client;
  std::unique_ptr<SmtEndpoint> server;

  explicit SwitchedBed(std::size_t queue_bytes) {
    sim::SwitchConfig sc;
    sc.queue_capacity_bytes = queue_bytes;
    auto built = stack::TopologyBuilder().via_tor().switch_config(sc).build(loop);
    EXPECT_TRUE(built.ok()) << built.error().message;
    topology = std::move(built).take();
    sw = &topology->fabric()->tor(0);
    // The fabric programs host-facing ports at the edge rate (100 Gb/s);
    // slow the drains to 20 Gb/s AFTER the build to get the oversubscribed
    // switch this suite is about. Hosts attach in index order, so port i
    // faces host i on the single ToR.
    sw->set_port_bandwidth(0, 20.0);
    sw->set_port_bandwidth(1, 20.0);

    client = std::make_unique<SmtEndpoint>(topology->host(0), 1000);
    server = std::make_unique<SmtEndpoint>(topology->host(1), 80);
    tls::TrafficKeys tx{Bytes(16, 0x81), Bytes(12, 0x82)};
    tls::TrafficKeys rx{Bytes(16, 0x83), Bytes(12, 0x84)};
    EXPECT_TRUE(client
                    ->register_session({2, 80},
                                       tls::CipherSuite::aes_128_gcm_sha256,
                                       tx, rx)
                    .ok());
    EXPECT_TRUE(server
                    ->register_session({1, 1000},
                                       tls::CipherSuite::aes_128_gcm_sha256,
                                       rx, tx)
                    .ok());
  }
};

TEST(Trimming, SmtThroughUncongestedSwitch) {
  SwitchedBed bed(1 << 20);  // deep buffers: nothing trimmed
  Bytes received;
  bed.server->set_on_message(
      [&](SmtEndpoint::MessageMeta, Bytes data) { received = std::move(data); });
  const Bytes msg(50000, 0x42);
  ASSERT_TRUE(bed.client->send_message({2, 80}, msg).ok());
  bed.loop.run();
  EXPECT_EQ(received, msg);
  EXPECT_EQ(bed.sw->stats().trimmed, 0u);
}

TEST(Trimming, CongestionTrimsAndSmtRecoversFast) {
  SwitchedBed bed(16 * 1024);  // shallow buffers: bursts overflow
  std::map<std::uint64_t, std::size_t> delivered;
  bed.server->set_on_message([&](SmtEndpoint::MessageMeta meta, Bytes data) {
    delivered[meta.msg_id] = data.size();
  });
  // A burst of mid-size messages overruns the 16 KB output queue.
  constexpr int kMessages = 8;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(bed.client->send_message({2, 80}, Bytes(20000, std::uint8_t(i))).ok());
  }
  bed.loop.run();
  // Everything is delivered and decrypts despite trimming.
  EXPECT_EQ(delivered.size(), std::size_t(kMessages));
  for (const auto& [id, size] : delivered) EXPECT_EQ(size, 20000u);
  EXPECT_EQ(bed.server->stats().decrypt_failures, 0u);
  // The switch really did trim, and the receiver recovered via immediate
  // RESENDs driven by the plaintext stub metadata (§7).
  EXPECT_GT(bed.sw->stats().trimmed, 0u);
  EXPECT_GT(bed.server->homa_stats().trim_resends, 0u);
}

TEST(Trimming, StubsPreserveExactLossInformation) {
  // Direct check: what Homa learns from a trimmed stub is exactly the
  // missing byte range, even though the payload (ciphertext) is gone.
  // The server's ToR uplink is re-pointed to snoop RESENDs on their way
  // into the switch.
  SwitchedBed bed(16 * 1024);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> resend_ranges;
  bed.topology->uplink(1)->set_receiver([&](sim::Packet pkt) {
    if (pkt.hdr.type == sim::PacketType::resend) {
      resend_ranges.emplace_back(pkt.hdr.resend_off - 1, pkt.hdr.grant_off);
    }
    bed.sw->receive(std::move(pkt));
  });
  int done = 0;
  bed.server->set_on_message([&](SmtEndpoint::MessageMeta, Bytes) { ++done; });
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(bed.client->send_message({2, 80}, Bytes(20000, 0x01)).ok());
  }
  bed.loop.run();
  EXPECT_EQ(done, 8);
  ASSERT_FALSE(resend_ranges.empty());
  for (const auto& [from, to] : resend_ranges) {
    EXPECT_LT(from, to);
    EXPECT_LE(to - from, 20000u + 1000u);  // a concrete, bounded range
  }
}

}  // namespace
}  // namespace smt::proto
