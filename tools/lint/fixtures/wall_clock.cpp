// Fixture: every wall-clock construct the linter must catch, plus
// look-alikes it must NOT catch. Never compiled — scanned by
// determinism_lint.py --self-test.
#include <chrono>
#include <ctime>

namespace fixture {

long bad_steady() {
  const auto t0 = std::chrono::steady_clock::now();  // expect-lint: wall-clock
  return t0.time_since_epoch().count();
}

long bad_system() {
  return std::chrono::system_clock::now()  // expect-lint: wall-clock
      .time_since_epoch()
      .count();
}

long bad_high_resolution() {
  const auto t = std::chrono::high_resolution_clock::now();  // expect-lint: wall-clock
  return t.time_since_epoch().count();
}

long bad_syscalls() {
  timespec ts{};
  clock_gettime(0, &ts);       // expect-lint: wall-clock
  const auto t = time(nullptr);  // expect-lint: wall-clock
  return ts.tv_sec + t;
}

// Look-alikes: virtual-time identifiers, durations without a clock, and
// clock mentions in comments must stay clean. std::chrono::steady_clock
// in this comment is not a finding; neither is the string below.
struct SimTimeHolder {
  long run_time_ns = 0;                    // "time" inside an identifier
  std::chrono::nanoseconds dur{0};         // a duration is not a clock
  const char* label = "steady_clock::now"; // string literal
};

long fine(SimTimeHolder& h) { return h.run_time_ns + h.dur.count(); }

}  // namespace fixture
