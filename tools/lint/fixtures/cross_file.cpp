// Fixture: iterates a hash container declared in the sibling header
// (cross_file.hpp) — the common real-world shape: member in the .hpp,
// order leak in the .cpp. Never compiled — scanned by
// determinism_lint.py --self-test.
#include "cross_file.hpp"

namespace fixture {

std::uint64_t Directory::bad_checksum() const {
  std::uint64_t sum = 0;
  for (const auto& [name, id] : entries_) {  // expect-lint: unordered-iteration
    sum = sum * 31 + id;
  }
  return sum;
}

}  // namespace fixture
