// Fixture: the `// determinism-lint: allow(<rule>) <reason>` escape hatch —
// same-line and previous-line placement suppress; a missing reason and a
// stale or wrong-rule pragma are themselves findings. Never compiled —
// scanned by determinism_lint.py --self-test.
#include <chrono>
#include <thread>

namespace fixture {

long fine_suppressed_same_line() {
  const auto t0 = std::chrono::steady_clock::now();  // determinism-lint: allow(wall-clock) trace diagnostics, stderr only
  return t0.time_since_epoch().count();
}

long fine_suppressed_previous_line() {
  // determinism-lint: allow(wall-clock) end-of-window trace stamp
  const auto t1 = std::chrono::steady_clock::now();
  return t1.time_since_epoch().count();
}

long bad_missing_reason() {
  // determinism-lint: allow(wall-clock) // expect-lint: bad-pragma
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

// determinism-lint: allow(ambient-entropy) nothing random below // expect-lint: unused-pragma
int bad_stale_pragma() { return 7; }

std::size_t bad_wrong_rule() {
  return std::thread::hardware_concurrency();  // determinism-lint: allow(wall-clock) wrong rule id // expect-lint: hardware-concurrency, unused-pragma
}

}  // namespace fixture
