// lint-as: src/netsim/link_fault.cpp

// Fixture: fault-model state machines (Gilbert–Elliott, flaps, jitter)
// masquerading as link fault code under src/. The fault path is exactly
// where ambient entropy is most tempting — "just add some randomness" —
// and exactly where it would silently break run-to-run and cross-shard
// reproducibility, so the linter must flag it here like anywhere else.
// Never compiled — scanned by determinism_lint.py --self-test.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

struct GilbertElliott {
  bool bad = false;
  // Seeded, stream-split engine: the legitimate pattern (mix_seed of a
  // scenario seed and the direction index). Must stay clean.
  std::mt19937_64 engine{0x9e3779b97f4a7c15ULL};
};

bool bad_loss_draw(GilbertElliott& ge) {
  // Deciding a drop from ambient entropy instead of the owned stream.
  return (std::rand() & 1) != 0 || ge.bad;  // expect-lint: ambient-entropy
}

long bad_flap_phase() {
  // Deriving the flap phase from the wall clock instead of virtual time.
  const auto now = std::chrono::steady_clock::now();  // expect-lint: wall-clock
  return now.time_since_epoch().count() % 2000;
}

unsigned bad_jitter_seed() {
  std::random_device rd;  // expect-lint: ambient-entropy
  return rd();
}

// The legitimate shapes must stay clean: pure phase arithmetic on virtual
// time, a seeded engine drawn per decision, and identifiers that merely
// mention randomness.
struct FlapState {
  long period_ns = 2'000'000;  // "rand" nowhere; virtual-time arithmetic
  long down_ns = 200'000;
  long offset_ns = 0;
  bool down_at(long virtual_now) const {
    return period_ns > 0 && (virtual_now - offset_ns) % period_ns < down_ns;
  }
};

bool fine_draw(GilbertElliott& ge, const FlapState& flap, long now) {
  const bool lossy = ge.bad && (ge.engine() & 1) != 0;  // seeded: allowed
  return lossy || flap.down_at(now);
}

}  // namespace fixture
