// Fixture: ambient-entropy constructs (unseeded / hardware randomness).
// Never compiled — scanned by determinism_lint.py --self-test.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_rand() {
  std::srand(42);        // expect-lint: ambient-entropy
  return std::rand();    // expect-lint: ambient-entropy
}

int bad_rand_r() {
  unsigned seed = 1;
  return rand_r(&seed);  // expect-lint: ambient-entropy
}

double bad_drand() {
  return drand48();      // expect-lint: ambient-entropy
}

unsigned bad_device() {
  std::random_device rd;  // expect-lint: ambient-entropy
  return rd();
}

// Look-alikes that must stay clean: seeded engines and identifiers that
// merely contain "rand".
struct SeededOk {
  std::mt19937_64 engine{12345};  // fixed seed: deterministic, allowed
  int operand = 0;                // "rand" inside an identifier
};

unsigned fine(SeededOk& s) { return unsigned(s.engine()) + unsigned(s.operand); }

}  // namespace fixture
