// Fixture: machine-shape probes. Never compiled — scanned by
// determinism_lint.py --self-test.
#include <cstddef>
#include <thread>

namespace fixture {

std::size_t bad_core_count() {
  return std::thread::hardware_concurrency();  // expect-lint: hardware-concurrency
}

// A shard count from configuration is the deterministic alternative.
std::size_t fine(std::size_t configured_shards) { return configured_shards; }

}  // namespace fixture
