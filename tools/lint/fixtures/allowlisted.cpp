// lint-as: src/netsim/shard.cpp
//
// Fixture: masquerades (via the lint-as header above) as the sharded
// engine, which is allowlisted for wall-clock (SMT_SHARD_TRACE wall
// diagnostics) and hardware-concurrency (worker-pool cap). The allowlist
// is PER RULE: ambient entropy is still flagged even here. Never
// compiled — scanned by determinism_lint.py --self-test.
#include <chrono>
#include <cstdlib>
#include <thread>

namespace fixture {

long fine_allowlisted_trace() {
  const auto t0 = std::chrono::steady_clock::now();  // allowlisted path
  return t0.time_since_epoch().count();
}

std::size_t fine_allowlisted_pool_cap() {
  return std::thread::hardware_concurrency();  // allowlisted path
}

int bad_entropy_even_here() {
  return std::rand();  // expect-lint: ambient-entropy
}

}  // namespace fixture
