// Fixture: iteration-order leaks from hash containers. Never compiled —
// scanned by determinism_lint.py --self-test.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

class Store {
 public:
  int bad_sum() const {
    int sum = 0;
    for (const auto& [key, value] : table_) {  // expect-lint: unordered-iteration
      sum += value;
    }
    return sum;
  }

  int bad_set_walk() const {
    int sum = 0;
    for (int id : live_ids_) {  // expect-lint: unordered-iteration
      sum += id;
    }
    return sum;
  }

  // The deterministic alternative: materialise a sorted view, iterate that.
  int fine_sorted_sum() const {
    const std::map<std::string, int> sorted(table_.begin(), table_.end());
    int sum = 0;
    for (const auto& [key, value] : sorted) {
      sum += value;
    }
    return sum;
  }

  // Point lookups never expose iteration order.
  int fine_lookup(const std::string& key) const {
    const auto it = table_.find(key);
    return it == table_.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<std::string, int> table_;
  std::unordered_set<int> live_ids_;
};

}  // namespace fixture
