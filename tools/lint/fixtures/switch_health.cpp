// lint-as: src/netsim/switch_health.cpp

// Fixture: the per-port link-health state machine (dark marking, probe /
// restore scheduling, re-steered-flow tracking) rewritten with the exact
// nondeterminism bugs the real sim::Switch must never grow. Health state
// is sim-visible twice over — it changes which ECMP port every packet
// takes AND when ports restore — so ambient time, ambient entropy, and
// address-ordered iteration here would desynchronise shards silently.
// Never compiled — scanned by determinism_lint.py --self-test.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Port {
  bool dark = false;
  std::size_t consecutive_fault_drops = 0;
  std::uint64_t probe_epoch = 0;
  std::unordered_set<std::uint64_t> resteered;
};

long bad_probe_deadline() {
  // Scheduling the restore probe off the wall clock instead of the
  // event loop's virtual time.
  const auto now = std::chrono::steady_clock::now();  // expect-lint: wall-clock
  return now.time_since_epoch().count() + 500000;
}

bool bad_probe_verdict(const Port& port) {
  // Deciding dark->healthy from ambient entropy instead of the RNG-free
  // flap-phase check.
  return port.dark && (std::rand() % 4) == 0;  // expect-lint: ambient-entropy
}

std::size_t bad_resteer_report(const Port& port, std::vector<std::uint64_t>& out) {
  // Hash-order iteration: the emitted flow list would differ run-to-run.
  for (const auto flow : port.resteered) {  // expect-lint: unordered-iteration
    out.push_back(flow);
  }
  return out.size();
}

struct DarkRegistry {
  // Address-ordered dark-port bookkeeping: restore order would follow
  // the allocator, not the topology.
  std::map<Port*, long> restore_at;  // expect-lint: pointer-keyed-ordered
};

// The legitimate shapes must stay clean: epoch-guarded probes keyed by
// index, pure phase arithmetic on virtual time, and ordered (std::set)
// per-flow tracking.
struct FlapPhase {
  long period_ns = 2000000;
  long down_ns = 300000;
  long offset_ns = 0;
  bool down_at(long virtual_now) const {
    return period_ns > 0 && virtual_now >= offset_ns &&
           (virtual_now - offset_ns) % period_ns < down_ns;
  }
};

struct CleanPort {
  bool dark = false;
  std::uint64_t probe_epoch = 0;
  std::set<std::uint64_t> episode_flows;  // ordered: iteration is stable
};

bool fine_probe(CleanPort& port, std::uint64_t epoch, const FlapPhase& flap,
                long virtual_now) {
  // Stale probes are dropped by epoch, the verdict is the RNG-free flap
  // phase, and restore clears the ordered per-episode flow set.
  if (!port.dark || port.probe_epoch != epoch) return false;
  if (flap.down_at(virtual_now)) return false;
  port.dark = false;
  port.episode_flows.clear();
  return true;
}

std::size_t fine_resteer_report(const CleanPort& port,
                                std::vector<std::uint64_t>& out) {
  for (const auto flow : port.episode_flows) out.push_back(flow);
  return out.size();
}

}  // namespace fixture
