// Fixture: the header half of the cross-file case — the member is
// DECLARED here; the iteration-order leak lives in cross_file.cpp, which
// the linter must catch by reading this sibling header's declarations.
// Never compiled — scanned by determinism_lint.py --self-test.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

class Directory {
 public:
  std::uint64_t bad_checksum() const;

 private:
  std::unordered_map<std::string, std::uint64_t> entries_;
};

}  // namespace fixture
