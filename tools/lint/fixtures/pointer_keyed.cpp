// Fixture: ordered containers keyed by pointers — iteration order is
// address order, which ASLR and allocator state change run to run.
// Never compiled — scanned by determinism_lint.py --self-test.
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Node {
  int id = 0;
};

struct Registry {
  std::map<const Node*, int> bad_ranks;  // expect-lint: pointer-keyed-ordered
  std::set<Node*> bad_members;           // expect-lint: pointer-keyed-ordered

  // Pointer VALUES are fine — only pointer KEYS order by address.
  std::map<int, Node*> fine_by_id;
  std::map<std::string, int> fine_by_name;
};

}  // namespace fixture
