// Fixture: a file full of look-alikes that must produce ZERO findings —
// banned names in comments and string literals, hash containers used for
// point lookups only, and ordered iteration over value-keyed maps.
// Never compiled — scanned by determinism_lint.py --self-test.
//
// std::chrono::steady_clock::now(), std::rand(), hardware_concurrency()
// in a comment are not findings.
#include <map>
#include <string>
#include <unordered_map>

namespace fixture {

struct Telemetry {
  // String literals are not code.
  const char* help = "uses std::chrono::steady_clock and std::random_device";
  const char* more = "for (x : unordered) time(nullptr) srand(7)";
};

class Cache {
 public:
  int lookup(const std::string& key) const {
    const auto it = table_.find(key);
    return it == table_.end() ? 0 : it->second;
  }

  void store(const std::string& key, int value) { table_[key] = value; }

  int ordered_sum() const {
    int sum = 0;
    for (const auto& [key, value] : totals_) {  // std::map: stable order
      sum += value;
    }
    return sum;
  }

 private:
  std::unordered_map<std::string, int> table_;
  std::map<std::string, int> totals_;
};

}  // namespace fixture
