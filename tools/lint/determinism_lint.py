#!/usr/bin/env python3
"""Determinism linter: bans wall-clock, ambient entropy, and
iteration-order leaks from sim-visible code.

The repo's value proposition is that every simulated result is a function
of the scenario and its seeds alone (docs/determinism.md). That contract
is easy to break silently: one `steady_clock::now()` in a cost path, one
range-for over an `std::unordered_map` whose order reaches a counter, one
pointer-keyed `std::map` feeding a scheduling decision, and results stop
replaying byte-identically. This linter makes those constructs a build
failure instead of a review hazard.

Rules (each finding names its rule id):

  wall-clock            std::chrono::{steady,system,high_resolution}_clock,
                        time(), clock_gettime, gettimeofday — host time is
                        not virtual time.
  ambient-entropy       std::rand/srand/rand_r/drand48, std::random_device —
                        all randomness must come from seeded DRBG/PRNGs
                        (crypto/drbg.hpp, common/rng.hpp).
  hardware-concurrency  std::thread::hardware_concurrency — results must
                        depend on the shard COUNT, never the machine.
  unordered-iteration   range-for over a variable declared as
                        std::unordered_{map,set} in the same file or its
                        sibling header/source — hash-table iteration order
                        is implementation- and address-dependent.
  pointer-keyed-ordered std::map/std::set keyed by a pointer type — ordered
                        iteration over addresses is ASLR-dependent.
  bad-pragma            an allow pragma with no reason text.
  unused-pragma         an allow pragma that suppresses nothing (stale
                        hatches must be removed, not accumulated).

Escape hatch — a justified, line-scoped suppression on the flagged line
or the line directly above it:

    // determinism-lint: allow(<rule>) <reason>

Allowlist — the engine/bench boundary where wall time is legitimate by
design (shard worker wall-diagnostics, bench wall measurement) is
allowlisted below so it needs no pragma clutter; everything else in src/
must be clean or carry a pragma.

Dependency-free (stdlib only), like tools/check_markdown_links. Scans the
paths given on the command line (default: src). `--self-test` runs the
scanner over tools/lint/fixtures/ and checks every finding against the
`// expect-lint: <rule>` markers embedded in the fixtures.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
DEFAULT_ROOTS = ["src"]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
EXTENSIONS = {".cpp", ".hpp", ".cc", ".h"}

# (path-prefix, rule) -> reason. Matched against the repo-relative path.
ALLOWLIST = {
    ("src/netsim/shard.cpp", "wall-clock"):
        "SMT_SHARD_TRACE worker work/wait wall breakdown — diagnostic "
        "stderr only, never sim-visible",
    ("src/netsim/shard.cpp", "hardware-concurrency"):
        "worker-pool cap — bounds wall parallelism only; the schedule "
        "depends on the shard count alone (see shard.hpp header comment)",
    ("bench/", "wall-clock"):
        "benches measure wall time by design (clearly labelled "
        "machine-relative in their output)",
    ("tests/", "wall-clock"):
        "tests may measure wall behaviour (never simulated results)",
}

SIMPLE_RULES = [
    ("wall-clock",
     re.compile(r"std::chrono::(?:steady|system|high_resolution)_clock"),
     "wall clock in sim-visible code — use virtual time (SimTime / the "
     "event loop) or inject the clock from the bench boundary"),
    ("wall-clock",
     re.compile(r"(?<![\w:])(?:clock_gettime|gettimeofday|ftime)\s*\("),
     "host time syscall in sim-visible code"),
    ("wall-clock",
     re.compile(r"(?<![\w.:>])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0|&)"),
     "time() in sim-visible code — scenario timestamps must come from "
     "config, not the host"),
    ("ambient-entropy",
     re.compile(r"(?<![\w:])(?:std::)?(?:srand|rand_r|drand48)\s*\("),
     "ambient PRNG seeding/state — use a scenario-seeded generator "
     "(crypto/drbg.hpp, common/rng.hpp)"),
    ("ambient-entropy",
     re.compile(r"(?<![\w:.>])(?:std::)?rand\s*\(\s*\)"),
     "rand() — use a scenario-seeded generator (crypto/drbg.hpp, "
     "common/rng.hpp)"),
    ("ambient-entropy",
     re.compile(r"std::random_device"),
     "std::random_device is hardware entropy — seeds must come from the "
     "scenario so runs replay"),
    ("hardware-concurrency",
     re.compile(r"hardware_concurrency"),
     "core-count probe — simulated results must depend on the shard "
     "count alone, never the machine"),
]

PRAGMA_RE = re.compile(
    r"//\s*determinism-lint:\s*allow\(([a-z-]+)\)\s*(.*?)\s*$")
LINT_AS_RE = re.compile(r"//\s*lint-as:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")

UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set)\s*<")
ORDERED_DECL_RE = re.compile(r"std::(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(
    r"for\s*\([^;()]*?(?<!:):(?!:)\s*([A-Za-z_][\w.>-]*)\s*\)")


def strip_code(text):
    """Blanks comments, string and char literals (preserving line
    structure) so rule regexes only see code. Returns one string."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings: treat R"<delim>( ... )<delim>" opaquely.
                if i >= 1 and text[i - 1] == "R":
                    m = re.match(r'"([^ ()\\\t\v\f\n]*)\(', text[i:])
                    if m:
                        end = text.find(")" + m.group(1) + '"', i)
                        if end == -1:
                            end = n
                        seg = text[i:end + len(m.group(1)) + 2]
                        out.append(re.sub(r"[^\n]", " ", seg))
                        i += len(seg)
                        continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif (state == "string" and c == '"') or \
                 (state == "char" and c == "'"):
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def template_arg_end(text, start):
    """`start` indexes just past an opening '<'; returns the index of its
    matching '>' (or len(text))."""
    depth = 1
    i = start
    while i < len(text) and depth:
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(text)


def unordered_names(stripped):
    """Identifiers declared with an std::unordered_{map,set} type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(stripped):
        end = template_arg_end(stripped, m.end())
        tail = stripped[end + 1:end + 120]
        nm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)", tail)
        if nm:
            names.add(nm.group(1))
    return names


def first_template_arg(stripped, start):
    """First top-level template argument after an opening '<'."""
    depth, i = 1, start
    while i < len(stripped):
        c = stripped[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                break
        elif c == "," and depth == 1:
            break
        i += 1
    return stripped[start:i].strip()


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


class FileScan:
    def __init__(self, path, rel, sibling_text=""):
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.stripped = strip_code(self.text)
        self.stripped_lines = self.stripped.splitlines()
        self.sibling_stripped = strip_code(sibling_text) if sibling_text \
            else ""
        # line -> (rule, reason) pragmas, read from the ORIGINAL lines.
        self.pragmas = {}
        self.used_pragmas = set()
        self.findings = []  # (line, rule, message)
        for no, line in enumerate(self.lines, 1):
            m = PRAGMA_RE.search(line)
            if m:
                # A trailing `// ...` (e.g. a fixture's expect-lint marker)
                # is not part of the justification.
                reason = re.sub(r"//.*$", "", m.group(2)).strip()
                self.pragmas[no] = (m.group(1), reason)

    def allowlisted(self, rule):
        for (prefix, allowed_rule) in ALLOWLIST:
            if allowed_rule == rule and (self.rel == prefix or
                                         self.rel.startswith(prefix)):
                return True
        return False

    def add(self, line_no, rule, message):
        if self.allowlisted(rule):
            return
        for candidate in (line_no, line_no - 1):
            pragma = self.pragmas.get(candidate)
            if pragma and pragma[0] == rule:
                self.used_pragmas.add(candidate)
                if not pragma[1]:
                    self.findings.append(
                        (candidate, "bad-pragma",
                         "allow(%s) pragma carries no reason — say why the "
                         "construct is safe" % rule))
                return
        self.findings.append((line_no, rule, message))

    def run(self):
        for no, line in enumerate(self.stripped_lines, 1):
            for rule, regex, message in SIMPLE_RULES:
                if regex.search(line):
                    self.add(no, rule, message)
        self.check_unordered_iteration()
        self.check_pointer_keyed()
        for no in sorted(set(self.pragmas) - self.used_pragmas):
            self.findings.append(
                (no, "unused-pragma",
                 "allow(%s) pragma suppresses nothing — remove it"
                 % self.pragmas[no][0]))
        self.findings.sort()
        return self.findings

    def check_unordered_iteration(self):
        names = unordered_names(self.stripped)
        names |= unordered_names(self.sibling_stripped)
        if not names:
            return
        for m in RANGE_FOR_RE.finditer(self.stripped):
            target = re.split(r"\.|->", m.group(1))[-1]
            if target in names:
                self.add(line_of(self.stripped, m.start()),
                         "unordered-iteration",
                         "range-for over std::unordered_{map,set} `%s` — "
                         "iteration order is not deterministic; use "
                         "std::map or iterate sorted keys" % target)

    def check_pointer_keyed(self):
        for m in ORDERED_DECL_RE.finditer(self.stripped):
            key = first_template_arg(self.stripped, m.end())
            if key.endswith("*"):
                self.add(line_of(self.stripped, m.start()),
                         "pointer-keyed-ordered",
                         "ordered container keyed by pointer `%s` — "
                         "address order depends on the allocator/ASLR; key "
                         "by a stable id instead" % key)


def sibling_of(path):
    table = {".cpp": [".hpp", ".h"], ".cc": [".hpp", ".h"],
             ".hpp": [".cpp", ".cc"], ".h": [".cpp", ".cc"]}
    for ext in table.get(path.suffix, []):
        candidate = path.with_suffix(ext)
        if candidate.exists():
            return candidate.read_text(encoding="utf-8")
    return ""


def scan_file(path, rel=None):
    rel = rel or str(path.resolve().relative_to(REPO))
    scan = FileScan(path, rel, sibling_of(path))
    return scan.run()


def scan_tree(roots):
    failures = 0
    for root in roots:
        base = (REPO / root) if not Path(root).is_absolute() else Path(root)
        files = [base] if base.is_file() else sorted(
            p for p in base.rglob("*") if p.suffix in EXTENSIONS)
        for path in files:
            rel = str(path.resolve().relative_to(REPO))
            for line, rule, message in scan_file(path, rel):
                print("%s:%d: [%s] %s" % (rel, line, rule, message))
                failures += 1
    if failures:
        print("\n%d determinism-lint finding(s)." % failures)
        print("Suppress a single justified line with "
              "`// determinism-lint: allow(<rule>) <reason>`; "
              "see docs/determinism.md#statically-enforced-invariants.")
    return failures


def self_test():
    """Every fixture declares its expected findings inline with
    `// expect-lint: <rule>[, <rule>]` on the offending line. A fixture may
    masquerade as a repo path (to exercise the allowlist) with a
    `// lint-as: <path>` header."""
    if not FIXTURES.is_dir():
        print("self-test: fixtures directory missing: %s" % FIXTURES)
        return 1
    failures = 0
    fixture_files = sorted(p for p in FIXTURES.iterdir()
                           if p.suffix in EXTENSIONS)
    if not fixture_files:
        print("self-test: no fixtures found in %s" % FIXTURES)
        return 1
    for path in fixture_files:
        text = path.read_text(encoding="utf-8")
        lint_as = LINT_AS_RE.search(text)
        rel = lint_as.group(1) if lint_as else \
            "tools/lint/fixtures/" + path.name
        expected = set()
        for no, line in enumerate(text.splitlines(), 1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    expected.add((no, rule))
        got = {(line, rule) for line, rule, _ in scan_file(path, rel)}
        if got != expected:
            failures += 1
            print("self-test FAIL: %s" % path.name)
            for line, rule in sorted(expected - got):
                print("  missing expected finding: line %d [%s]"
                      % (line, rule))
            for line, rule in sorted(got - expected):
                print("  unexpected finding: line %d [%s]" % (line, rule))
    if not failures:
        print("self-test OK: %d fixtures, all findings as expected"
              % len(fixture_files))
    return failures


def main(argv):
    if "--self-test" in argv:
        return 1 if self_test() else 0
    roots = [a for a in argv if not a.startswith("-")] or DEFAULT_ROOTS
    return 1 if scan_tree(roots) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
