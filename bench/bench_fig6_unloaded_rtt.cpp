// Figure 6: unloaded RTT of various sized RPCs (§5.1).
//
// Paper methodology: single RPC at a time, custom echo application, RPC
// sizes 64 B..64 KB, systems TCP / kTLS-sw / kTLS-hw / Homa / SMT-sw /
// SMT-hw. Expected shape: Homa beats TCP (5-35 %), SMT beats kTLS
// (13-32 % hw, 10-35 % sw), the margin narrows at 64 KB because the Homa
// receiver waits for the complete message while TCP streams, and hardware
// offload helps only a little when unloaded (<= 7 %).
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<std::size_t> sizes = sweep<std::size_t>(
      {64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536});
  const std::vector<TransportKind> kinds = {
      TransportKind::tcp,    TransportKind::ktls_sw, TransportKind::ktls_hw,
      TransportKind::homa,   TransportKind::smt_sw,  TransportKind::smt_hw};
  std::vector<const char*> names;
  for (const auto kind : kinds) names.push_back(transport_name(kind));

  std::vector<std::vector<double>> rtt_us;
  for (const std::size_t size : sizes) {
    std::vector<double> row;
    for (const auto kind : kinds) {
      RpcFabricConfig config;
      config.kind = kind;
      row.push_back(measure_unloaded_rtt_us(config, size));
    }
    rtt_us.push_back(std::move(row));
  }

  print_table("Figure 6: unloaded RTT [us] vs RPC size [B]", "RPC size",
              sizes, names, rtt_us, "%10.2f");

  // Shape checks the paper reports (§5.1).
  std::printf("\nshape checks:\n");
  for (std::size_t row = 0; row < sizes.size(); ++row) {
    const double tcp = rtt_us[row][0], ktls_sw = rtt_us[row][1],
                 ktls_hw = rtt_us[row][2], homa = rtt_us[row][3],
                 smt_sw = rtt_us[row][4], smt_hw = rtt_us[row][5];
    std::printf(
        "  %6zu B: Homa vs TCP %+5.1f%%   SMT-sw vs kTLS-sw %+5.1f%%   "
        "SMT-hw vs kTLS-hw %+5.1f%%   HW benefit (SMT) %+4.1f%%\n",
        sizes[row], 100.0 * (homa - tcp) / tcp,
        100.0 * (smt_sw - ktls_sw) / ktls_sw,
        100.0 * (smt_hw - ktls_hw) / ktls_hw,
        100.0 * (smt_hw - smt_sw) / smt_sw);
  }
  // One JSON metric per measured size (smoke mode measures only the first).
  for (std::size_t row = 0; row < sizes.size(); ++row) {
    json_metric("smt_hw_rtt_us_" + std::to_string(sizes[row]), rtt_us[row][5]);
  }

  // RX interrupt coalescing is a latency/efficiency trade-off: holding the
  // interrupt back (rx_coalesce_usecs > 0) coalesces more frames per
  // interrupt under load but taxes every unloaded round trip by the
  // hold-off on each direction's data and control packets.
  std::printf("\n== RX coalescing hold-off vs unloaded RTT: SMT-hw 1 KB "
              "==\n%-22s%12s\n",
              "rx_coalesce_usecs", "RTT [us]");
  const std::vector<std::size_t> holdoffs = sweep<std::size_t>({0, 5, 20});
  for (const std::size_t holdoff : holdoffs) {
    RpcFabricConfig config;
    config.kind = TransportKind::smt_hw;
    config.rx_coalesce_usecs = double(holdoff);
    const double rtt = measure_unloaded_rtt_us(config, 1024);
    std::printf("%-22zu%12.2f\n", holdoff, rtt);
    json_metric("rtt_us_holdoff" + std::to_string(holdoff), rtt);
  }
  // The adaptive (DIM-style) controller escapes the trade-off for this
  // workload: the single-RPC probe stream looks latency-sensitive, so each
  // ring walks its hold-off down to fire-immediately. One row, not one per
  // hold-off: in adaptive mode the ladder seed comes from
  // rx_coalesce_frames (the default 16 -> the {16 frames, 16 us} level)
  // and the static rx_coalesce_usecs value is not consulted at all.
  {
    RpcFabricConfig config;
    config.kind = TransportKind::smt_hw;
    config.adaptive_rx_coalesce = true;
    const double rtt = measure_unloaded_rtt_us(config, 1024);
    std::printf("%-22s%12.2f  (DIM converges to fire-immediately)\n",
                "adaptive", rtt);
    json_metric("rtt_us_adaptive", rtt);
  }
  // Receive steering (RSS indirection + irqbalance rebalancer) must be
  // latency-neutral when unloaded: the single-RPC probe generates a
  // balanced, tiny IRQ load, the hysteresis holds, and zero migrations
  // means zero flush/reprogram work on the critical path.
  {
    RpcFabricConfig config;
    config.kind = TransportKind::smt_hw;
    config.irq_rebalance_period = usec(100);
    const double rtt = measure_unloaded_rtt_us(config, 1024);
    std::printf("%-22s%12.2f  (rebalancer on: hysteresis holds, no "
                "migrations)\n",
                "steered", rtt);
    json_metric("rtt_us_steered", rtt);
  }
  return 0;
}
