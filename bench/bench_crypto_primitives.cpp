// Crypto primitive microbenchmarks (google-benchmark, real wall clock).
//
// Grounds the simulator's cost-model constants and the Table 2 / Figure 12
// results: AES-GCM sealing at record sizes, SHA-256, HKDF expansion, P-256
// ECDH and ECDSA operations.
#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/p256.hpp"
#include "crypto/sha256.hpp"

using namespace smt;
using namespace smt::crypto;

static void BM_AesGcmSeal(benchmark::State& state) {
  AesGcm gcm(Bytes(16, 0x11));
  const Bytes nonce(12, 0x22);
  const Bytes aad(5, 0x17);
  const Bytes plaintext(std::size_t(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.seal(nonce, aad, plaintext));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_AesGcmOpen(benchmark::State& state) {
  AesGcm gcm(Bytes(16, 0x11));
  const Bytes nonce(12, 0x22);
  const Bytes sealed = gcm.seal(nonce, {}, Bytes(std::size_t(state.range(0)), 0x5a));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.open(nonce, {}, sealed));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesGcmOpen)->Arg(1024)->Arg(16384);

static void BM_Sha256(benchmark::State& state) {
  const Bytes data(std::size_t(state.range(0)), 0x33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(data));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

static void BM_HkdfExpandLabel(benchmark::State& state) {
  const Bytes secret(32, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hkdf_expand_label(secret, "key", {}, 16));
  }
}
BENCHMARK(BM_HkdfExpandLabel);

static void BM_EcdhKeygen(benchmark::State& state) {
  HmacDrbg drbg(to_bytes(std::string_view("bench")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdh_keypair_from_seed(drbg.generate(32)));
  }
}
BENCHMARK(BM_EcdhKeygen);

static void BM_EcdhSharedSecret(benchmark::State& state) {
  HmacDrbg drbg(to_bytes(std::string_view("bench")));
  const auto a = ecdh_keypair_from_seed(drbg.generate(32));
  const auto b = ecdh_keypair_from_seed(drbg.generate(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdh_shared_secret(a.private_key, b.public_key));
  }
}
BENCHMARK(BM_EcdhSharedSecret);

static void BM_EcdsaSign(benchmark::State& state) {
  HmacDrbg drbg(to_bytes(std::string_view("bench")));
  const auto kp = ecdsa_keypair_from_seed(drbg.generate(32));
  const Bytes msg = to_bytes(std::string_view("certificate verify content"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_sign(kp.private_key, msg));
  }
}
BENCHMARK(BM_EcdsaSign);

static void BM_EcdsaVerify(benchmark::State& state) {
  HmacDrbg drbg(to_bytes(std::string_view("bench")));
  const auto kp = ecdsa_keypair_from_seed(drbg.generate(32));
  const Bytes msg = to_bytes(std::string_view("certificate verify content"));
  const auto sig = ecdsa_sign(kp.private_key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

BENCHMARK_MAIN();
