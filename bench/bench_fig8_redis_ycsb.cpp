// Figure 8: mini-Redis throughput on YCSB A-D (§5.3).
//
// Paper methodology: single-threaded Redis server, YCSB workloads A
// (update-heavy), B (read-mostly), C (read-only), D (read-latest), value
// sizes 64 B / 1 KB / 4 KB. Expected shape: Homa/SMT beat the TCP/TLS
// family in all cells (application processing keeps rates below the
// transport plateau); SMT-hw adds a few percent over SMT-sw at small
// values where the freed CPU cycles feed the bottleneck thread directly;
// TCP (plaintext) edges closer to Homa at 4 KB values.
//
// "TLS-usr" uses the TCPLS-like software-only profile as a stand-in for
// user-space TLS (extra per-record processing, no offload) — recorded as a
// substitution in DESIGN.md.
#include "apps/miniredis.hpp"
#include "apps/ycsb.hpp"
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;
using namespace smt::apps;

namespace {

double run_cell(TransportKind kind, YcsbWorkload workload,
                std::size_t value_size) {
  RpcFabricConfig config;
  config.kind = kind;
  config.single_threaded_server = true;  // Redis's threading model
  RpcFabric fabric(config);

  auto redis = std::make_shared<MiniRedis>();
  fabric.set_handler([redis](ByteView request) { return redis->handle(request); });

  YcsbConfig ycsb;
  ycsb.workload = workload;
  ycsb.record_count = 2000;
  ycsb.value_size = value_size;
  YcsbGenerator generator(ycsb);
  for (std::uint64_t i = 0; i < generator.record_count(); ++i) {
    redis->apply(generator.load_request(i));  // preload, unmeasured
  }

  constexpr std::size_t kClients = 16;
  const std::size_t kOps = iters(6000);
  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < kClients; ++i) {
    channels.push_back(fabric.make_channel(i));
  }
  std::size_t issued = 0, completed = 0;
  SimTime start = 0, end = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    if (issued >= kOps) return;
    ++issued;
    channels[slot]->call(generator.next().encode(), 0,
                         [&, slot](SimDuration, Bytes) {
                           ++completed;
                           if (completed == kOps / 10) start = fabric.loop().now();
                           if (completed == kOps) end = fabric.loop().now();
                           issue(slot);
                         });
  };
  for (std::size_t i = 0; i < kClients; ++i) issue(i);
  fabric.loop().run();
  return double(kOps - kOps / 10) / to_sec(end - start);
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<TransportKind> kinds = {
      TransportKind::tcp,     TransportKind::tcpls,  TransportKind::ktls_sw,
      TransportKind::ktls_hw, TransportKind::homa,   TransportKind::smt_sw,
      TransportKind::smt_hw};
  const char* kind_names[] = {"TCP",  "TLS-usr", "kTLS-sw", "kTLS-hw",
                              "Homa", "SMT-sw",  "SMT-hw"};

  for (const std::size_t value_size :
       sweep<std::size_t>({64, 1024, 4096})) {
    std::printf("\n== Figure 8: Redis YCSB throughput [K ops/s], %zu B values ==\n",
                value_size);
    std::printf("%-10s", "workload");
    for (const char* name : kind_names) std::printf("%10s", name);
    std::printf("\n");
    for (const YcsbWorkload workload : sweep<YcsbWorkload>(
             {YcsbWorkload::a, YcsbWorkload::b, YcsbWorkload::c,
              YcsbWorkload::d})) {
      std::printf("%-10c", char(workload));
      std::vector<double> row;
      for (const TransportKind kind : kinds) {
        row.push_back(run_cell(kind, workload, value_size) / 1e3);
        std::printf("%10.1f", row.back());
      }
      std::printf("\n");
      // Paper's §5.3 claims for this row.
      const double tls_usr = row[1], ktls_sw = row[2], ktls_hw = row[3],
                   smt_sw = row[5], smt_hw = row[6];
      std::printf("  shape: SMT-sw vs TLS-usr %+5.1f%%, vs kTLS-sw %+5.1f%%; "
                  "SMT-hw vs kTLS-hw %+5.1f%%\n",
                  100.0 * (smt_sw - tls_usr) / tls_usr,
                  100.0 * (smt_sw - ktls_sw) / ktls_sw,
                  100.0 * (smt_hw - ktls_hw) / ktls_hw);
    }
  }
  return 0;
}
