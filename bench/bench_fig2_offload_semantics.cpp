// Figure 2: autonomous-offload encryption semantics, demonstrated on the
// simulated NIC with REAL AES-GCM — in-sequence, out-of-sequence
// (corrupted), and resync'd segments, plus the §3.2 cross-queue hazard and
// SMT's per-queue-context remedy (§4.4.2).
#include <cstdio>

#include "bench_common.hpp"
#include "netsim/nic.hpp"
#include "tls/record.hpp"

using namespace smt;
using namespace smt::sim;

namespace {

struct Harness {
  EventLoop loop;
  Link link{loop, LinkConfig{}};
  Nic nic{loop, NicConfig{}};
  tls::TrafficKeys keys;
  std::vector<Packet> wire;

  Harness() {
    keys.key = Bytes(16, 0x11);
    keys.iv = Bytes(12, 0x22);
    nic.attach_tx(&link.a2b());
    link.a2b().set_receiver([this](Packet pkt) { wire.push_back(std::move(pkt)); });
  }

  std::uint32_t context(std::uint64_t seq) {
    return nic.create_flow_context(tls::CipherSuite::aes_128_gcm_sha256, keys,
                                   seq)
        .value();
  }

  SegmentDescriptor record_segment(std::uint32_t ctx, std::uint64_t seq,
                                   const char* text) {
    SegmentDescriptor d;
    d.segment.hdr.flow.proto = Proto::smt;
    Bytes payload;
    const std::size_t inner = std::string_view(text).size() + 1;
    append_u8(payload, 23);
    append_u16be(payload, 0x0303);
    append_u16be(payload, std::uint16_t(inner + 16));
    append(payload, to_bytes(std::string_view(text)));
    append_u8(payload, 23);
    payload.resize(payload.size() + 16, 0);
    d.segment.payload = std::move(payload);
    TlsRecordDesc rec;
    rec.context_id = ctx;
    rec.plaintext_len = inner;
    rec.record_seq = seq;
    d.records.push_back(rec);
    return d;
  }

  const char* open_status(std::size_t index, std::uint64_t seq) {
    tls::RecordProtection rp(tls::CipherSuite::aes_128_gcm_sha256, keys);
    const auto opened = rp.open(seq, wire.at(index).payload);
    return opened.ok() ? "decrypts OK" : "CORRUPTED (auth fails)";
  }
};

}  // namespace

int main(int argc, char** argv) {
  // --smoke changes nothing (the semantics demo is already tiny) but
  // init() still records the JSON result line for the CI artifact.
  bench::init(argc, argv);
  std::printf("== Figure 2: autonomous TLS offload semantics (real AES-GCM) ==\n\n");

  {
    Harness h;
    const auto ctx = h.context(1);
    h.nic.post_segment(0, h.record_segment(ctx, 1, "S1"));
    h.nic.post_segment(0, h.record_segment(ctx, 2, "S2"));
    h.loop.run();
    std::printf("In-seq:      S1 %s, S2 %s\n", h.open_status(0, 1),
                h.open_status(1, 2));
  }
  {
    Harness h;
    const auto ctx = h.context(1);
    h.nic.post_segment(0, h.record_segment(ctx, 1, "S1"));
    h.nic.post_segment(0, h.record_segment(ctx, 3, "S3"));  // skips S2
    h.loop.run();
    std::printf("Out-seq:     S1 %s, S3 %s  (hardware used its internal "
                "counter)\n",
                h.open_status(0, 1), h.open_status(1, 3));
  }
  {
    Harness h;
    const auto ctx = h.context(1);
    h.nic.post_segment(0, h.record_segment(ctx, 1, "S1"));
    h.nic.post_resync(0, ctx, 3);  // R3
    h.nic.post_segment(0, h.record_segment(ctx, 3, "S3"));
    h.loop.run();
    std::printf("Out-resync:  S1 %s, S3 %s  (resync descriptor repaired the "
                "counter)\n",
                h.open_status(0, 1), h.open_status(1, 3));
  }
  {
    Harness h;
    const auto ctx = h.context(0);  // ONE context shared by two queues
    h.nic.post_resync(0, ctx, 4);
    h.nic.post_resync(1, ctx, 5);
    h.nic.post_segment(0, h.record_segment(ctx, 4, "S4"));
    h.nic.post_segment(1, h.record_segment(ctx, 5, "S5"));
    h.loop.run();
    std::printf("\n§3.2 cross-queue hazard (shared context, resync+segment "
                "pairs on two queues):\n  S4 %s, S5 %s\n",
                h.open_status(0, 4), h.open_status(1, 5));
  }
  {
    Harness h;
    const auto ctx0 = h.context(0);
    const auto ctx1 = h.context(0);  // §4.4.2: one context PER QUEUE
    h.nic.post_resync(0, ctx0, 4);
    h.nic.post_resync(1, ctx1, 5);
    h.nic.post_segment(0, h.record_segment(ctx0, 4, "S4"));
    h.nic.post_segment(1, h.record_segment(ctx1, 5, "S5"));
    h.loop.run();
    std::printf("SMT per-queue contexts (§4.4.2), same scenario:\n  S4 %s, "
                "S5 %s\n",
                h.open_status(0, 4), h.open_status(1, 5));
  }
  return 0;
}
