// Adversity scenario matrix: the deterministic fault model exercised end
// to end. Each row pits one adverse condition against the paper's hardened
// transports (smt_hw / smt_sw / ktls_hw) on the two-host RPC fabric:
//
//   clean       no faults — the baseline the other rows degrade from
//   wan_loss    WAN-grade uniform loss + bounded reorder/jitter + a trickle
//               of corruption (the TCP-over-mobile-ad-hoc workload shape)
//   burst_flap  Gilbert–Elliott burst loss plus periodic link flaps. The
//               flap period (2 ms) divides TCP's 10 ms min-RTO, so without
//               RTO backoff retransmissions phase-lock into the down
//               window; with backoff + the retry cap wedged ktls
//               connections are abandoned (ETIMEDOUT) and show up as
//               completed < issued
//   nic_reset   clean wire, but the SERVER NIC resets mid-run: every TLS
//               flow context, queued descriptor, and RX frame is lost.
//               SMT re-establishes transparently through the flow-context
//               manager; ktls_hw limps back through per-record driver
//               resyncs — same completions, roughly half the goodput
//   flood       hostile short-packet flood from spoofed flows into the
//               server NIC: varied five-tuples spread across RSS rings and
//               push DIM, single-packet messages complete at the transport
//               and die in the session/replay defenses (no_session drops,
//               dedup absorption) while the real workload keeps running
//
// Reported per row: goodput over delivered payload, p50/p99 RTT, CPU
// microseconds per completed RPC, and the completion count. Every number
// is virtual-time deterministic: byte-identical run-to-run per shard count
// (the smoke run re-checks one fault row to keep that honest).
//
// A second matrix exercises FABRIC-CORE faults on a 4-rack leaf-spine
// Clos: every switch-to-switch wire carries a [fabric_fault]-style
// profile (periodic flaps with per-wire decorrelated phase plus a
// Gilbert–Elliott component), the switches run the per-port link-health
// state machine (dark after 2 consecutive fault kills, probe/restore on
// a 500 us schedule), and ECMP re-steers flows around dark paths by
// rank-preserving group shrink. The core_flood rows add an OPEN-LOOP
// arrival-process flood into the server — inter-arrival gaps are a pure
// counter function (mix_seed of the packet index), never paced by
// completion, so sweeping the mean gap walks the load right through the
// RSS/DIM saturation knee while the core is flapping.
//
// Flags:
//   --smoke     tiny iteration budget (CI); also runs the determinism
//               self-check
//   --shards N  run on a ShardedEngine with N shards (default 1; client on
//               shard 0, server on shard N-1)
#include "bench_common.hpp"

#include <algorithm>
#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "stack/topology.hpp"

namespace smt::bench {
namespace {

struct Adversity {
  const char* name;
  sim::FaultProfile fault;
  bool reset_server_nic = false;
  bool flood = false;
};

std::vector<Adversity> scenario_matrix() {
  std::vector<Adversity> rows;
  rows.push_back({"clean", {}, false, false});

  sim::FaultProfile wan;
  wan.good_loss_rate = 0.01;  // uniform 1% via the GE good state
  wan.p_bad_to_good = 1.0;
  wan.reorder_rate = 0.1;
  wan.reorder_jitter = usec(50);
  wan.corrupt_rate = 0.001;
  wan.seed = 11;
  rows.push_back({"wan_loss", wan, false, false});

  sim::FaultProfile burst;
  burst.p_good_to_bad = 0.01;
  burst.p_bad_to_good = 0.1;
  burst.bad_loss_rate = 0.5;
  burst.flap_period = msec(2);
  burst.flap_down = usec(200);
  burst.flap_offset = usec(500);
  burst.seed = 12;
  rows.push_back({"burst_flap", burst, false, false});

  rows.push_back({"nic_reset", {}, true, false});
  rows.push_back({"flood", {}, false, true});
  return rows;
}

struct RowResult {
  double goodput_gbps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double cpu_us_per_rpc = 0;
  std::size_t completed = 0;
  std::size_t issued = 0;
};

/// Spoofed short-packet flood into the server NIC: `count` single-packet
/// smt-proto messages, one every 500 ns starting at t0, from rotating
/// never-registered five-tuples (plus every 8th a REPLAY of the real
/// client's message 0 — absorbed by the transport dedup / replay filter).
/// Injected on the server's shard, so multi-shard runs stay deterministic.
void schedule_flood(RpcFabric& fabric, std::size_t count, SimTime t0) {
  stack::Host& server = fabric.server_host();
  for (std::size_t k = 0; k < count; ++k) {
    server.loop().schedule_at(t0 + SimTime(k) * 500, [&server, k] {
      sim::Packet pkt;
      const bool replay = k % 8 == 7;
      pkt.hdr.set_flow(sim::FiveTuple{
          replay ? 1u : 1000u + std::uint32_t(k % 32), server.ip(),
          replay ? std::uint16_t(1000) : std::uint16_t(20000 + k % 97),
          std::uint16_t(80), sim::Proto::smt});
      pkt.hdr.type = sim::PacketType::data;
      pkt.hdr.msg_id = replay ? 0 : 1 + k;
      pkt.hdr.msg_len = 64;
      pkt.hdr.ip_id = std::uint16_t(k);
      pkt.hdr.ipid_base = std::uint16_t(k);
      pkt.payload.assign(64, 0xee);
      server.nic().receive(std::move(pkt));
    });
  }
}

RowResult run_row(const Adversity& row, TransportKind kind,
                  std::size_t shards) {
  RpcFabricConfig config;
  config.kind = kind;
  config.propagation = usec(1);
  config.fault = row.fault;

  sim::ShardedEngine engine(shards, usec(1));
  RpcFabric fabric(config, engine, 0, shards - 1);

  constexpr std::size_t kConcurrency = 8;
  const std::size_t request_bytes = 2048;
  const std::size_t response_bytes = 512;
  const std::size_t total_ops = smoke() ? 120 : 2000;

  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < kConcurrency; ++i) {
    channels.push_back(fabric.make_channel(i));
  }

  if (row.reset_server_nic) {
    // Two resets while traffic is in flight. Scheduled on the server's
    // own loop (its shard), from outside any NIC delivery callback.
    fabric.server_host().loop().schedule_at(
        usec(100), [&] { fabric.server_host().reset_nic(); });
    fabric.server_host().loop().schedule_at(
        usec(250), [&] { fabric.server_host().reset_nic(); });
  }
  if (row.flood) {
    schedule_flood(fabric, smoke() ? 200 : 5000, usec(20));
  }

  // Closed loop; client-side accumulation only (all channels live on the
  // client host's shard, so no cross-thread merging is needed).
  RowResult result;
  std::vector<double> rtts_us;
  SimTime last_completion = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    if (result.issued >= total_ops) return;
    ++result.issued;
    channels[slot]->call(Bytes(request_bytes, 0x5a),
                         std::uint32_t(response_bytes),
                         [&, slot](SimDuration rtt, Bytes) {
                           rtts_us.push_back(to_usec(rtt));
                           last_completion = fabric.client_host().loop().now();
                           issue(slot);
                         });
  };
  for (std::size_t i = 0; i < kConcurrency; ++i) issue(i);
  engine.run();

  result.completed = rtts_us.size();
  std::sort(rtts_us.begin(), rtts_us.end());
  if (!rtts_us.empty()) {
    result.p50_us = rtts_us[rtts_us.size() / 2];
    result.p99_us = rtts_us[std::size_t(double(rtts_us.size() - 1) * 0.99)];
  }
  const double bits = double(result.completed) *
                      double(request_bytes + response_bytes) * 8.0;
  result.goodput_gbps =
      last_completion > 0 ? bits / double(last_completion) : 0;
  const double cpu_ns = double(fabric.client_busy_ns()) +
                        double(fabric.server_busy_ns()) +
                        double(fabric.client_irq_ns()) +
                        double(fabric.server_irq_ns());
  result.cpu_us_per_rpc =
      result.completed > 0 ? cpu_ns / 1e3 / double(result.completed) : 0;
  return result;
}

// ---------------------------------------------------------------------------
// Fabric-core fault matrix.

/// OPEN-LOOP arrival-process flood: unlike schedule_flood's fixed 500 ns
/// slots, inter-arrival gaps are drawn per packet from a deterministic
/// counter-based process — gap_k = mean/2 + mix_seed(seed, k) % mean,
/// uniform in [mean/2, 3*mean/2) with no RNG state — and arrivals are
/// never paced by completion: the injector keeps pushing at the
/// configured mean rate however far behind the receiver falls, which is
/// what exposes the RSS/DIM saturation knee. All arrival times are
/// precomputed on the server's shard before run().
void schedule_open_loop_flood(RpcFabric& fabric, std::size_t count,
                              SimTime t0, SimDuration mean_gap,
                              std::uint64_t seed) {
  stack::Host& server = fabric.server_host();
  SimTime when = t0;
  for (std::size_t k = 0; k < count; ++k) {
    when += mean_gap / 2 +
            SimDuration(mix_seed(seed, k) % std::uint64_t(mean_gap));
    server.loop().schedule_at(when, [&server, k] {
      sim::Packet pkt;
      pkt.hdr.set_flow(sim::FiveTuple{
          2000u + std::uint32_t(k % 64), server.ip(),
          std::uint16_t(30000 + k % 113), std::uint16_t(80),
          sim::Proto::smt});
      pkt.hdr.type = sim::PacketType::data;
      pkt.hdr.msg_id = 1 + k;
      pkt.hdr.msg_len = 64;
      pkt.hdr.ip_id = std::uint16_t(k);
      pkt.hdr.ipid_base = std::uint16_t(k);
      pkt.payload.assign(64, 0xee);
      server.nic().receive(std::move(pkt));
    });
  }
}

struct CoreRow {
  std::string name;
  SimDuration flood_gap = 0;  // 0 = no flood; else mean inter-arrival
};

/// The flapping-core scenario: 4 racks x 2 hosts over 2 spines, health
/// state machine on, every fabric wire flapping (decorrelated phases)
/// with a Gilbert–Elliott component so both dark triggers fire.
stack::ScenarioConfig core_scenario() {
  stack::ScenarioConfig scenario;
  scenario.topology.racks = 4;
  scenario.topology.hosts_per_rack = 2;
  scenario.topology.spines = 2;
  scenario.host.app_cores = 2;
  scenario.host.softirq_cores = 2;
  scenario.switch_config.health_dark_threshold = 2;
  scenario.switch_config.health_probe_interval = usec(500);
  scenario.fabric_fault.flap_period = msec(2);
  scenario.fabric_fault.flap_down = usec(300);
  scenario.fabric_fault.p_good_to_bad = 0.005;
  scenario.fabric_fault.p_bad_to_good = 0.05;
  scenario.fabric_fault.bad_loss_rate = 0.5;
  scenario.fabric_fault.seed = 21;
  scenario.fabric_fault_set = true;
  scenario.workload.request_bytes = 2048;
  scenario.workload.response_bytes = 512;
  scenario.workload.concurrency = 2;
  scenario.workload.clients = 4;
  scenario.workload.ops_per_client = smoke() ? 15 : 250;
  return scenario;
}

struct CoreResult {
  RowResult row;
  std::uint64_t dark_transitions = 0;
  std::uint64_t resteered_flows = 0;
  std::uint64_t dropped_dark = 0;
  std::uint64_t fault_dropped = 0;

  bool operator==(const CoreResult& o) const {
    return row.completed == o.row.completed && row.issued == o.row.issued &&
           row.goodput_gbps == o.row.goodput_gbps &&
           row.p99_us == o.row.p99_us &&
           row.cpu_us_per_rpc == o.row.cpu_us_per_rpc &&
           dark_transitions == o.dark_transitions &&
           resteered_flows == o.resteered_flows &&
           dropped_dark == o.dropped_dark &&
           fault_dropped == o.fault_dropped;
  }
};

CoreResult run_core_row(const CoreRow& core, TransportKind kind,
                        std::size_t shards) {
  const stack::ScenarioConfig scenario = core_scenario();
  sim::ShardedEngine engine(shards, usec(1));
  auto built = stack::TopologyBuilder(scenario).build(engine);
  if (!built.ok()) {
    std::fprintf(stderr, "corefault topology: %s\n",
                 built.error().message.c_str());
    std::abort();
  }
  auto topology = std::move(built).take();

  // Server on rack 0; clients offset-major across the OTHER racks so
  // every RPC crosses the flapping core.
  const std::size_t server_index = 0;
  std::vector<std::size_t> clients;
  const stack::TopologySpec& t = scenario.topology;
  for (std::size_t offset = 0;
       offset < t.hosts_per_rack && clients.size() < scenario.workload.clients;
       ++offset) {
    for (std::size_t rack = 1;
         rack < t.racks && clients.size() < scenario.workload.clients;
         ++rack) {
      clients.push_back(rack * t.hosts_per_rack + offset);
    }
  }

  RpcFabricConfig config;
  config.kind = kind;
  RpcFabric fabric(config, *topology, server_index, clients);

  const std::size_t concurrency = scenario.workload.concurrency;
  const std::size_t ops_per_client = scenario.workload.ops_per_client;
  const std::size_t request_bytes = scenario.workload.request_bytes;
  const std::size_t response_bytes = scenario.workload.response_bytes;

  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    for (std::size_t c = 0; c < concurrency; ++c) {
      channels.push_back(fabric.make_channel(i, c));
    }
  }

  if (core.flood_gap > 0) {
    schedule_open_loop_flood(fabric, smoke() ? 200 : 5000, usec(20),
                             core.flood_gap, /*seed=*/31);
  }

  // Completion callbacks run on each client's SHARD THREAD: accumulate
  // strictly per client and merge after engine.run() joins the shards.
  struct PerClient {
    std::size_t issued = 0;
    std::vector<double> rtts_us;
    SimTime last_completion = 0;
  };
  std::vector<PerClient> per_client(clients.size());
  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    const std::size_t client = slot / concurrency;
    PerClient& mine = per_client[client];
    if (mine.issued >= ops_per_client) return;
    ++mine.issued;
    channels[slot]->call(
        Bytes(request_bytes, 0x5a), std::uint32_t(response_bytes),
        [&, slot, client](SimDuration rtt, Bytes) {
          PerClient& me = per_client[client];
          me.rtts_us.push_back(to_usec(rtt));
          me.last_completion = fabric.client_host(client).loop().now();
          issue(slot);
        });
  };
  for (std::size_t slot = 0; slot < channels.size(); ++slot) issue(slot);
  engine.run();

  CoreResult result;
  std::vector<double> rtts_us;
  SimTime last_completion = 0;
  for (const PerClient& c : per_client) {
    result.row.issued += c.issued;
    result.row.completed += c.rtts_us.size();
    rtts_us.insert(rtts_us.end(), c.rtts_us.begin(), c.rtts_us.end());
    last_completion = std::max(last_completion, c.last_completion);
  }
  std::sort(rtts_us.begin(), rtts_us.end());
  if (!rtts_us.empty()) {
    result.row.p50_us = rtts_us[rtts_us.size() / 2];
    result.row.p99_us = rtts_us[std::size_t(double(rtts_us.size() - 1) * 0.99)];
  }
  const double bits = double(result.row.completed) *
                      double(request_bytes + response_bytes) * 8.0;
  result.row.goodput_gbps =
      last_completion > 0 ? bits / double(last_completion) : 0;
  const double cpu_ns = double(fabric.client_busy_ns()) +
                        double(fabric.server_busy_ns()) +
                        double(fabric.client_irq_ns()) +
                        double(fabric.server_irq_ns());
  result.row.cpu_us_per_rpc = result.row.completed > 0
                                  ? cpu_ns / 1e3 / double(result.row.completed)
                                  : 0;
  const sim::Switch::Stats totals = topology->switch_totals();
  result.dark_transitions = totals.dark_transitions;
  result.resteered_flows = totals.resteered_flows;
  result.dropped_dark = totals.dropped_dark;
  result.fault_dropped = totals.fault_dropped;
  return result;
}

std::vector<CoreRow> core_matrix() {
  std::vector<CoreRow> rows;
  rows.push_back({"core_flap", 0});
  if (smoke()) {
    rows.push_back({"core_flood_g500", nsec(500)});
  } else {
    // Sweep the open-loop arrival rate through the RSS/DIM knee.
    rows.push_back({"core_flood_g1000", nsec(1000)});
    rows.push_back({"core_flood_g500", nsec(500)});
    rows.push_back({"core_flood_g250", nsec(250)});
  }
  return rows;
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  using namespace smt;
  using namespace smt::bench;
  init(argc, argv);

  std::size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::size_t(std::atoi(argv[++i]));
    }
  }
  if (shards == 0) shards = 1;

  const std::vector<TransportKind> kinds = {
      TransportKind::smt_hw, TransportKind::smt_sw, TransportKind::ktls_hw};
  const std::vector<Adversity> rows = scenario_matrix();

  std::printf("Adversity matrix: 2-host RPC fabric, 2048 B req / 512 B resp, "
              "%zu shard(s)\n", shards);
  std::printf("%-12s %-8s %13s %9s %9s %12s %10s\n", "scenario", "transport",
              "goodput_gbps", "p50_us", "p99_us", "cpu_us_rpc", "completed");

  std::size_t completed_total = 0;
  for (const Adversity& row : rows) {
    for (const TransportKind kind : kinds) {
      const RowResult r = run_row(row, kind, shards);
      completed_total += r.completed;
      std::printf("%-12s %-8s %13.3f %9.1f %9.1f %12.2f %7zu/%zu\n", row.name,
                  apps::transport_key(kind), r.goodput_gbps, r.p50_us,
                  r.p99_us, r.cpu_us_per_rpc, r.completed, r.issued);
      const std::string key =
          std::string(row.name) + "_" + apps::transport_key(kind);
      json_metric("adversity_goodput_gbps_" + key, r.goodput_gbps);
      json_metric("adversity_p99_us_" + key, r.p99_us);
      json_metric("adversity_cpu_us_per_rpc_" + key, r.cpu_us_per_rpc);
      json_metric("adversity_completed_" + key, double(r.completed));
      if (row.fault.enabled() || row.reset_server_nic || row.flood) {
        // Adverse rows must still terminate; smt rows must not lose RPCs
        // except under nic_reset-style permanent-context loss (reported,
        // not asserted — the matrix is an observatory, not a gate).
      }
    }
  }
  // The committed baseline compares these two: the count is exact (pure
  // virtual-time determinism) and the clean-row goodput guards the
  // no-fault datapath the same way virtual_mrpc_per_sec does.
  json_metric("adversity_completed_total", double(completed_total));
  {
    const RowResult clean = run_row(rows[0], TransportKind::smt_hw, shards);
    json_metric("adversity_goodput_gbps_clean", clean.goodput_gbps);
  }

  // ---- Fabric-core fault matrix --------------------------------------
  const std::vector<CoreRow> core_rows = core_matrix();
  std::printf("\nCore-fault matrix: 4-rack leaf-spine Clos, flapping core "
              "wires, dark-path re-steering, %zu shard(s)\n", shards);
  std::printf("%-16s %-8s %13s %9s %11s %6s %8s %9s\n", "scenario",
              "transport", "goodput_gbps", "p99_us", "completed", "dark",
              "resteer", "darkdrop");
  std::size_t corefault_completed_total = 0;
  std::uint64_t corefault_resteered_total = 0;
  std::uint64_t corefault_dark_total = 0;
  for (const CoreRow& row : core_rows) {
    for (const TransportKind kind : kinds) {
      const CoreResult r = run_core_row(row, kind, shards);
      corefault_completed_total += r.row.completed;
      corefault_resteered_total += r.resteered_flows;
      corefault_dark_total += r.dark_transitions;
      std::printf("%-16s %-8s %13.3f %9.1f %8zu/%zu %6llu %8llu %9llu\n",
                  row.name.c_str(), apps::transport_key(kind),
                  r.row.goodput_gbps, r.row.p99_us, r.row.completed,
                  r.row.issued,
                  static_cast<unsigned long long>(r.dark_transitions),
                  static_cast<unsigned long long>(r.resteered_flows),
                  static_cast<unsigned long long>(r.dropped_dark));
      const std::string key = row.name + "_" + apps::transport_key(kind);
      json_metric("corefault_goodput_gbps_" + key, r.row.goodput_gbps);
      json_metric("corefault_p99_us_" + key, r.row.p99_us);
      json_metric("corefault_completed_" + key, double(r.row.completed));
      json_metric("corefault_dark_transitions_" + key,
                  double(r.dark_transitions));
      json_metric("corefault_resteered_" + key, double(r.resteered_flows));
      json_metric("corefault_dropped_dark_" + key, double(r.dropped_dark));
    }
  }
  json_metric("corefault_completed_total", double(corefault_completed_total));
  json_metric("corefault_resteered_flows",
              double(corefault_resteered_total));
  json_metric("corefault_dark_transitions", double(corefault_dark_total));
  if (corefault_resteered_total == 0) {
    // The whole point of the matrix is the re-steering path; a core-fault
    // run that never re-steers means the health machine or the group
    // shrink regressed. Hard-fail so CI catches it.
    std::fprintf(stderr,
                 "CORE-FAULT FAILURE: no flows were re-steered around dark "
                 "paths across the whole matrix\n");
    return 1;
  }

  if (smoke()) {
    // Determinism self-check: the nastiest fault row must replay
    // byte-identically run-to-run at this shard count.
    const RowResult a = run_row(rows[2], TransportKind::smt_hw, shards);
    const RowResult b = run_row(rows[2], TransportKind::smt_hw, shards);
    if (a.completed != b.completed || a.goodput_gbps != b.goodput_gbps ||
        a.p99_us != b.p99_us || a.cpu_us_per_rpc != b.cpu_us_per_rpc) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: burst_flap smt_hw diverged "
                   "run-to-run at %zu shard(s)\n", shards);
      return 1;
    }
    std::printf("determinism self-check: burst_flap x smt_hw byte-identical "
                "run-to-run at %zu shard(s)\n", shards);
    // Same contract for the core-fault matrix, health counters included.
    const CoreResult ca = run_core_row(core_rows[0], TransportKind::smt_hw,
                                       shards);
    const CoreResult cb = run_core_row(core_rows[0], TransportKind::smt_hw,
                                       shards);
    if (!(ca == cb)) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: core_flap smt_hw diverged "
                   "run-to-run at %zu shard(s)\n", shards);
      return 1;
    }
    std::printf("determinism self-check: core_flap x smt_hw byte-identical "
                "run-to-run at %zu shard(s)\n", shards);
  }
  return 0;
}
