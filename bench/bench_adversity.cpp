// Adversity scenario matrix: the deterministic fault model exercised end
// to end. Each row pits one adverse condition against the paper's hardened
// transports (smt_hw / smt_sw / ktls_hw) on the two-host RPC fabric:
//
//   clean       no faults — the baseline the other rows degrade from
//   wan_loss    WAN-grade uniform loss + bounded reorder/jitter + a trickle
//               of corruption (the TCP-over-mobile-ad-hoc workload shape)
//   burst_flap  Gilbert–Elliott burst loss plus periodic link flaps. The
//               flap period (2 ms) divides TCP's 10 ms min-RTO, so without
//               RTO backoff retransmissions phase-lock into the down
//               window; with backoff + the retry cap wedged ktls
//               connections are abandoned (ETIMEDOUT) and show up as
//               completed < issued
//   nic_reset   clean wire, but the SERVER NIC resets mid-run: every TLS
//               flow context, queued descriptor, and RX frame is lost.
//               SMT re-establishes transparently through the flow-context
//               manager; ktls_hw limps back through per-record driver
//               resyncs — same completions, roughly half the goodput
//   flood       hostile short-packet flood from spoofed flows into the
//               server NIC: varied five-tuples spread across RSS rings and
//               push DIM, single-packet messages complete at the transport
//               and die in the session/replay defenses (no_session drops,
//               dedup absorption) while the real workload keeps running
//
// Reported per row: goodput over delivered payload, p50/p99 RTT, CPU
// microseconds per completed RPC, and the completion count. Every number
// is virtual-time deterministic: byte-identical run-to-run per shard count
// (the smoke run re-checks one fault row to keep that honest).
//
// Flags:
//   --smoke     tiny iteration budget (CI); also runs the determinism
//               self-check
//   --shards N  run on a ShardedEngine with N shards (default 1; client on
//               shard 0, server on shard N-1)
#include "bench_common.hpp"

#include <algorithm>
#include <functional>
#include <optional>

namespace smt::bench {
namespace {

struct Adversity {
  const char* name;
  sim::FaultProfile fault;
  bool reset_server_nic = false;
  bool flood = false;
};

std::vector<Adversity> scenario_matrix() {
  std::vector<Adversity> rows;
  rows.push_back({"clean", {}, false, false});

  sim::FaultProfile wan;
  wan.good_loss_rate = 0.01;  // uniform 1% via the GE good state
  wan.p_bad_to_good = 1.0;
  wan.reorder_rate = 0.1;
  wan.reorder_jitter = usec(50);
  wan.corrupt_rate = 0.001;
  wan.seed = 11;
  rows.push_back({"wan_loss", wan, false, false});

  sim::FaultProfile burst;
  burst.p_good_to_bad = 0.01;
  burst.p_bad_to_good = 0.1;
  burst.bad_loss_rate = 0.5;
  burst.flap_period = msec(2);
  burst.flap_down = usec(200);
  burst.flap_offset = usec(500);
  burst.seed = 12;
  rows.push_back({"burst_flap", burst, false, false});

  rows.push_back({"nic_reset", {}, true, false});
  rows.push_back({"flood", {}, false, true});
  return rows;
}

struct RowResult {
  double goodput_gbps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double cpu_us_per_rpc = 0;
  std::size_t completed = 0;
  std::size_t issued = 0;
};

/// Spoofed short-packet flood into the server NIC: `count` single-packet
/// smt-proto messages, one every 500 ns starting at t0, from rotating
/// never-registered five-tuples (plus every 8th a REPLAY of the real
/// client's message 0 — absorbed by the transport dedup / replay filter).
/// Injected on the server's shard, so multi-shard runs stay deterministic.
void schedule_flood(RpcFabric& fabric, std::size_t count, SimTime t0) {
  stack::Host& server = fabric.server_host();
  for (std::size_t k = 0; k < count; ++k) {
    server.loop().schedule_at(t0 + SimTime(k) * 500, [&server, k] {
      sim::Packet pkt;
      const bool replay = k % 8 == 7;
      pkt.hdr.set_flow(sim::FiveTuple{
          replay ? 1u : 1000u + std::uint32_t(k % 32), server.ip(),
          replay ? std::uint16_t(1000) : std::uint16_t(20000 + k % 97),
          std::uint16_t(80), sim::Proto::smt});
      pkt.hdr.type = sim::PacketType::data;
      pkt.hdr.msg_id = replay ? 0 : 1 + k;
      pkt.hdr.msg_len = 64;
      pkt.hdr.ip_id = std::uint16_t(k);
      pkt.hdr.ipid_base = std::uint16_t(k);
      pkt.payload.assign(64, 0xee);
      server.nic().receive(std::move(pkt));
    });
  }
}

RowResult run_row(const Adversity& row, TransportKind kind,
                  std::size_t shards) {
  RpcFabricConfig config;
  config.kind = kind;
  config.propagation = usec(1);
  config.fault = row.fault;

  sim::ShardedEngine engine(shards, usec(1));
  RpcFabric fabric(config, engine, 0, shards - 1);

  constexpr std::size_t kConcurrency = 8;
  const std::size_t request_bytes = 2048;
  const std::size_t response_bytes = 512;
  const std::size_t total_ops = smoke() ? 120 : 2000;

  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < kConcurrency; ++i) {
    channels.push_back(fabric.make_channel(i));
  }

  if (row.reset_server_nic) {
    // Two resets while traffic is in flight. Scheduled on the server's
    // own loop (its shard), from outside any NIC delivery callback.
    fabric.server_host().loop().schedule_at(
        usec(100), [&] { fabric.server_host().reset_nic(); });
    fabric.server_host().loop().schedule_at(
        usec(250), [&] { fabric.server_host().reset_nic(); });
  }
  if (row.flood) {
    schedule_flood(fabric, smoke() ? 200 : 5000, usec(20));
  }

  // Closed loop; client-side accumulation only (all channels live on the
  // client host's shard, so no cross-thread merging is needed).
  RowResult result;
  std::vector<double> rtts_us;
  SimTime last_completion = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    if (result.issued >= total_ops) return;
    ++result.issued;
    channels[slot]->call(Bytes(request_bytes, 0x5a),
                         std::uint32_t(response_bytes),
                         [&, slot](SimDuration rtt, Bytes) {
                           rtts_us.push_back(to_usec(rtt));
                           last_completion = fabric.client_host().loop().now();
                           issue(slot);
                         });
  };
  for (std::size_t i = 0; i < kConcurrency; ++i) issue(i);
  engine.run();

  result.completed = rtts_us.size();
  std::sort(rtts_us.begin(), rtts_us.end());
  if (!rtts_us.empty()) {
    result.p50_us = rtts_us[rtts_us.size() / 2];
    result.p99_us = rtts_us[std::size_t(double(rtts_us.size() - 1) * 0.99)];
  }
  const double bits = double(result.completed) *
                      double(request_bytes + response_bytes) * 8.0;
  result.goodput_gbps =
      last_completion > 0 ? bits / double(last_completion) : 0;
  const double cpu_ns = double(fabric.client_busy_ns()) +
                        double(fabric.server_busy_ns()) +
                        double(fabric.client_irq_ns()) +
                        double(fabric.server_irq_ns());
  result.cpu_us_per_rpc =
      result.completed > 0 ? cpu_ns / 1e3 / double(result.completed) : 0;
  return result;
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  using namespace smt;
  using namespace smt::bench;
  init(argc, argv);

  std::size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::size_t(std::atoi(argv[++i]));
    }
  }
  if (shards == 0) shards = 1;

  const std::vector<TransportKind> kinds = {
      TransportKind::smt_hw, TransportKind::smt_sw, TransportKind::ktls_hw};
  const std::vector<Adversity> rows = scenario_matrix();

  std::printf("Adversity matrix: 2-host RPC fabric, 2048 B req / 512 B resp, "
              "%zu shard(s)\n", shards);
  std::printf("%-12s %-8s %13s %9s %9s %12s %10s\n", "scenario", "transport",
              "goodput_gbps", "p50_us", "p99_us", "cpu_us_rpc", "completed");

  std::size_t completed_total = 0;
  for (const Adversity& row : rows) {
    for (const TransportKind kind : kinds) {
      const RowResult r = run_row(row, kind, shards);
      completed_total += r.completed;
      std::printf("%-12s %-8s %13.3f %9.1f %9.1f %12.2f %7zu/%zu\n", row.name,
                  apps::transport_key(kind), r.goodput_gbps, r.p50_us,
                  r.p99_us, r.cpu_us_per_rpc, r.completed, r.issued);
      const std::string key =
          std::string(row.name) + "_" + apps::transport_key(kind);
      json_metric("adversity_goodput_gbps_" + key, r.goodput_gbps);
      json_metric("adversity_p99_us_" + key, r.p99_us);
      json_metric("adversity_cpu_us_per_rpc_" + key, r.cpu_us_per_rpc);
      json_metric("adversity_completed_" + key, double(r.completed));
      if (row.fault.enabled() || row.reset_server_nic || row.flood) {
        // Adverse rows must still terminate; smt rows must not lose RPCs
        // except under nic_reset-style permanent-context loss (reported,
        // not asserted — the matrix is an observatory, not a gate).
      }
    }
  }
  // The committed baseline compares these two: the count is exact (pure
  // virtual-time determinism) and the clean-row goodput guards the
  // no-fault datapath the same way virtual_mrpc_per_sec does.
  json_metric("adversity_completed_total", double(completed_total));
  {
    const RowResult clean = run_row(rows[0], TransportKind::smt_hw, shards);
    json_metric("adversity_goodput_gbps_clean", clean.goodput_gbps);
  }

  if (smoke()) {
    // Determinism self-check: the nastiest fault row must replay
    // byte-identically run-to-run at this shard count.
    const RowResult a = run_row(rows[2], TransportKind::smt_hw, shards);
    const RowResult b = run_row(rows[2], TransportKind::smt_hw, shards);
    if (a.completed != b.completed || a.goodput_gbps != b.goodput_gbps ||
        a.p99_us != b.p99_us || a.cpu_us_per_rpc != b.cpu_us_per_rpc) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: burst_flap smt_hw diverged "
                   "run-to-run at %zu shard(s)\n", shards);
      return 1;
    }
    std::printf("determinism self-check: burst_flap x smt_hw byte-identical "
                "run-to-run at %zu shard(s)\n", shards);
  }
  return 0;
}
