// Flow-context pressure: sessions >> NIC flow contexts (§4.4.2), in BOTH
// directions.
//
// NIC TLS context memory is finite; the seed stack hard-failed once
// max_flow_contexts sessions existed. With the shared LRU flow-context
// manager, contexts behave like a cache: cold sessions are evicted and
// transparently re-established on their next use, so the stack keeps
// delivering — at the cost of extra context (re)establishment (each fresh
// lease now pays CostModel::context_establish), visible below as
// evictions / re-establishes / miss rate, never as corrupted records
// (out-of-sequence must stay 0) or failed sends.
//
// Methodology: one host pair; N client SMT-hw endpoints, each with one
// session to a single server endpoint; every session completes `kRounds`
// 1 KB request + 256 B echo-reply round trips, issued round-robin across
// sessions (the LRU's worst case once N exceeds the context table) with a
// bounded in-flight window. The sweep is BIDIRECTIONAL: requests exercise
// client-TX + server-RX contexts, replies exercise server-TX + client-RX
// contexts, so both hosts' tables thrash simultaneously.
#include "bench_common.hpp"

#include "crypto/drbg.hpp"
#include "smt/endpoint.hpp"

using namespace smt;
using namespace smt::bench;

namespace {

constexpr std::size_t kMaxFlowContexts = 1024;
constexpr std::size_t kRounds = 8;       // round trips per session (>
                                         // num_queues so same-queue context
                                         // reuse and resync-on-reuse happen)
constexpr std::size_t kWindow = 256;     // in-flight round trips (< contexts)
constexpr std::size_t kRequestBytes = 1024;
constexpr std::size_t kReplyBytes = 256;

struct PressureResult {
  double throughput_mps = 0;  // completed round trips per second (virtual)
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;       // requests decrypted at the server
  std::uint64_t replies = 0;         // replies decrypted at the clients
  std::uint64_t send_failures = 0;   // client requests + server replies
  std::uint64_t out_of_sequence = 0; // both NICs
  std::uint64_t context_misses = 0;  // both NICs
  std::uint64_t resyncs = 0;         // both NICs
  std::uint64_t evictions = 0;       // both hosts' managers
  std::uint64_t reestablished = 0;   // both hosts' managers
  std::uint64_t rx_established = 0;  // fresh RX leases, both sides
  std::uint64_t rx_fallbacks = 0;    // RX leases denied -> software decrypt
  double miss_rate = 0;              // both hosts pooled
};

PressureResult run_pressure(std::size_t sessions) {
  sim::EventLoop loop;
  stack::HostConfig hc;
  hc.nic.max_flow_contexts = kMaxFlowContexts;
  const auto topology = two_host_topology(loop, hc);
  stack::Host& client_host = topology->host(0);
  stack::Host& server_host = topology->host(1);

  proto::SmtConfig smt_config;
  smt_config.hw_offload = true;

  const transport::PeerAddr server_addr{2, 80};
  proto::SmtEndpoint server(server_host, server_addr.port, smt_config);

  PressureResult result;
  SimTime first_completion = 0;
  SimTime last_completion = 0;
  const std::size_t total = sessions * kRounds;
  std::size_t issued = 0;
  std::function<void()> issue_one;

  std::vector<std::unique_ptr<proto::SmtEndpoint>> clients;
  clients.reserve(sessions);
  const tls::CipherSuite suite = tls::CipherSuite::aes_128_gcm_sha256;
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::uint16_t port = std::uint16_t(1000 + s);
    auto client =
        std::make_unique<proto::SmtEndpoint>(client_host, port, smt_config);
    // Distinct per-session keys, as distinct TLS handshakes would produce.
    tls::TrafficKeys tx{Bytes(16, std::uint8_t(s)), Bytes(12, std::uint8_t(s >> 8))};
    tls::TrafficKeys rx{Bytes(16, std::uint8_t(s + 1)), Bytes(12, 0x99)};
    (void)client->register_session(server_addr, suite, tx, rx);
    (void)server.register_session({1, port}, suite, rx, tx);
    // The reply closes the round trip and refills the window.
    client->set_on_message([&](proto::SmtEndpoint::MessageMeta, Bytes) {
      if (result.replies == 0) first_completion = loop.now();
      ++result.replies;
      last_completion = loop.now();
      issue_one();
    });
    clients.push_back(std::move(client));
  }

  // Closed loop: at most kWindow round trips outstanding (kWindow <
  // contexts, so an idle eviction victim always exists), issued
  // round-robin across sessions.
  issue_one = [&] {
    if (issued >= total) return;
    const std::size_t session = issued % sessions;
    ++issued;
    auto sent = clients[session]->send_message(
        server_addr, Bytes(kRequestBytes, std::uint8_t(issued)),
        &client_host.app_core(session % client_host.app_core_count()));
    if (sent.ok()) {
      ++result.sent;
    } else {
      ++result.send_failures;
    }
  };
  std::size_t served = 0;
  server.set_on_message([&](proto::SmtEndpoint::MessageMeta meta, Bytes) {
    ++result.delivered;
    auto reply = server.send_message(
        {meta.peer.ip, meta.peer.port}, Bytes(kReplyBytes, 0x7e),
        &server_host.app_core(served++ % server_host.app_core_count()));
    if (!reply.ok()) ++result.send_failures;
  });
  for (std::size_t i = 0; i < std::min(kWindow, total); ++i) {
    loop.schedule(SimDuration(i) * nsec(120), issue_one);
  }
  loop.run();

  const auto& client_nic = client_host.nic().counters();
  const auto& server_nic = server_host.nic().counters();
  result.out_of_sequence =
      client_nic.out_of_sequence_records + server_nic.out_of_sequence_records;
  result.context_misses =
      client_nic.context_misses + server_nic.context_misses;
  result.resyncs = client_nic.resyncs + server_nic.resyncs;

  const auto& client_ctx = client_host.flow_contexts().stats();
  const auto& server_ctx = server_host.flow_contexts().stats();
  result.evictions = client_ctx.evictions + server_ctx.evictions;
  result.reestablished = client_ctx.reestablished + server_ctx.reestablished;
  result.rx_established = server.stats().rx_contexts_created;
  result.rx_fallbacks = server.stats().rx_context_acquire_failures;
  for (const auto& client : clients) {
    result.rx_established += client->stats().rx_contexts_created;
    result.rx_fallbacks += client->stats().rx_context_acquire_failures;
  }
  const std::uint64_t hits = client_ctx.hits + server_ctx.hits;
  const std::uint64_t misses = client_ctx.misses + server_ctx.misses;
  result.miss_rate =
      hits + misses == 0 ? 0.0 : double(misses) / double(hits + misses);
  const double seconds = to_sec(last_completion - first_completion);
  result.throughput_mps =
      seconds > 0 ? double(result.replies - 1) / seconds : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<std::size_t> session_counts = sweep<std::size_t>(
      {64, 256, 1024, 4096, 16 * kMaxFlowContexts});

  std::printf("== Bidirectional flow-context pressure: SMT-hw, %zu NIC "
              "contexts, %zu x (1 KB request + 256 B reply) per session ==\n",
              kMaxFlowContexts, kRounds);
  std::printf("%-10s %9s %9s %9s %9s %8s %9s %9s %8s %8s %8s %7s %7s\n",
              "sessions", "sent", "delivrd", "replies", "failures", "out-seq",
              "resyncs", "evict", "reestab", "rx-est", "rx-fall", "miss%",
              "Krt/s");
  bool ok = true;
  for (const std::size_t sessions : session_counts) {
    const PressureResult r = run_pressure(sessions);
    std::printf(
        "%-10zu %9llu %9llu %9llu %9llu %8llu %9llu %9llu %8llu %8llu %8llu "
        "%6.1f%% %7.0f\n",
        sessions, (unsigned long long)r.sent, (unsigned long long)r.delivered,
        (unsigned long long)r.replies, (unsigned long long)r.send_failures,
        (unsigned long long)r.out_of_sequence, (unsigned long long)r.resyncs,
        (unsigned long long)r.evictions, (unsigned long long)r.reestablished,
        (unsigned long long)r.rx_established,
        (unsigned long long)r.rx_fallbacks, 100.0 * r.miss_rate,
        r.throughput_mps / 1e3);
    json_metric("krt_per_s_s" + std::to_string(sessions),
                r.throughput_mps / 1e3);
    if (r.delivered != r.sent || r.replies != r.sent ||
        r.send_failures != 0 || r.out_of_sequence != 0 ||
        r.context_misses != 0) {
      ok = false;
    }
  }
  std::printf("\ninvariants (every row): delivered == replies == sent, zero "
              "failures, zero out-of-sequence records, zero NIC context "
              "misses -> %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
