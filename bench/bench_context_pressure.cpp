// Flow-context pressure: sessions >> NIC flow contexts (§4.4.2).
//
// NIC TLS context memory is finite; the seed stack hard-failed once
// max_flow_contexts sessions existed. With the shared LRU flow-context
// manager, contexts behave like a cache: cold sessions are evicted and
// transparently re-established on their next send, so the stack keeps
// delivering — at the cost of extra context (re)establishment, visible
// below as evictions / re-establishes / miss rate, never as corrupted
// records (out-of-sequence must stay 0) or failed sends.
//
// Methodology: one host pair; N client SMT-hw endpoints, each with one
// session to a single server endpoint; every session sends `kRounds`
// 1 KB messages, issued round-robin across sessions (the LRU's worst
// case once N exceeds the context table) with a bounded in-flight window.
#include "bench_common.hpp"

#include "crypto/drbg.hpp"
#include "netsim/link.hpp"
#include "smt/endpoint.hpp"

using namespace smt;
using namespace smt::bench;

namespace {

constexpr std::size_t kMaxFlowContexts = 1024;
constexpr std::size_t kRounds = 8;       // messages per session (> num_queues
                                         // so same-queue context reuse and
                                         // resync-on-reuse both happen)
constexpr std::size_t kWindow = 256;     // in-flight sends (< contexts)
constexpr std::size_t kMessageBytes = 1024;

struct PressureResult {
  double throughput_mps = 0;  // delivered messages per second (virtual)
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t out_of_sequence = 0;
  std::uint64_t context_misses = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t evictions = 0;
  std::uint64_t reestablished = 0;
  double miss_rate = 0;
};

PressureResult run_pressure(std::size_t sessions) {
  sim::EventLoop loop;
  stack::HostConfig hc;
  hc.nic.max_flow_contexts = kMaxFlowContexts;
  hc.ip = 1;
  stack::Host client_host(loop, hc);
  hc.ip = 2;
  stack::Host server_host(loop, hc);
  sim::Link link(loop, sim::LinkConfig{});
  stack::connect_hosts(client_host, server_host, link);

  proto::SmtConfig smt_config;
  smt_config.hw_offload = true;

  const transport::PeerAddr server_addr{2, 80};
  proto::SmtEndpoint server(server_host, server_addr.port, smt_config);

  std::vector<std::unique_ptr<proto::SmtEndpoint>> clients;
  clients.reserve(sessions);
  const tls::CipherSuite suite = tls::CipherSuite::aes_128_gcm_sha256;
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::uint16_t port = std::uint16_t(1000 + s);
    auto client =
        std::make_unique<proto::SmtEndpoint>(client_host, port, smt_config);
    // Distinct per-session keys, as distinct TLS handshakes would produce.
    tls::TrafficKeys tx{Bytes(16, std::uint8_t(s)), Bytes(12, std::uint8_t(s >> 8))};
    tls::TrafficKeys rx{Bytes(16, std::uint8_t(s + 1)), Bytes(12, 0x99)};
    (void)client->register_session(server_addr, suite, tx, rx);
    (void)server.register_session({1, port}, suite, rx, tx);
    clients.push_back(std::move(client));
  }

  PressureResult result;
  SimTime first_delivery = 0;
  SimTime last_delivery = 0;

  // Closed loop: at most kWindow messages outstanding (kWindow < contexts,
  // so an idle eviction victim always exists), issued round-robin across
  // sessions; each delivery refills the window.
  const std::size_t total = sessions * kRounds;
  std::size_t issued = 0;
  std::function<void()> issue_one = [&] {
    if (issued >= total) return;
    const std::size_t session = issued % sessions;
    ++issued;
    auto sent = clients[session]->send_message(
        server_addr, Bytes(kMessageBytes, std::uint8_t(issued)),
        &client_host.app_core(session % client_host.app_core_count()));
    if (sent.ok()) {
      ++result.sent;
    } else {
      ++result.send_failures;
    }
  };
  server.set_on_message([&](proto::SmtEndpoint::MessageMeta, Bytes) {
    if (result.delivered == 0) first_delivery = loop.now();
    ++result.delivered;
    last_delivery = loop.now();
    issue_one();
  });
  for (std::size_t i = 0; i < std::min(kWindow, total); ++i) {
    loop.schedule(SimDuration(i) * nsec(120), issue_one);
  }
  loop.run();

  const auto& nic = client_host.nic().counters();
  const auto& ctx = client_host.flow_contexts().stats();
  result.out_of_sequence = nic.out_of_sequence_records;
  result.context_misses = nic.context_misses;
  result.resyncs = nic.resyncs;
  result.evictions = ctx.evictions;
  result.reestablished = ctx.reestablished;
  result.miss_rate = client_host.flow_contexts().miss_rate();
  // Hook-time lease losses surface as decrypt failures at the receiver,
  // i.e. delivered < sent — no need to count ctx.acquire_failures here
  // (synchronous ones are already counted via the failed send).
  const double seconds = to_sec(last_delivery - first_delivery);
  result.throughput_mps =
      seconds > 0 ? double(result.delivered - 1) / seconds : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<std::size_t> session_counts = sweep<std::size_t>(
      {64, 256, 1024, 4096, 16 * kMaxFlowContexts});

  std::printf("== Flow-context pressure: SMT-hw, %zu NIC contexts, %zu x 1 KB "
              "messages per session ==\n",
              kMaxFlowContexts, kRounds);
  std::printf("%-10s %10s %10s %9s %9s %10s %10s %9s %8s %7s\n", "sessions",
              "sent", "delivered", "failures", "out-seq", "resyncs",
              "evictions", "reestab", "miss%", "Kmsg/s");
  bool ok = true;
  for (const std::size_t sessions : session_counts) {
    const PressureResult r = run_pressure(sessions);
    std::printf("%-10zu %10llu %10llu %9llu %9llu %10llu %10llu %9llu %7.1f%% %7.0f\n",
                sessions, (unsigned long long)r.sent,
                (unsigned long long)r.delivered,
                (unsigned long long)r.send_failures,
                (unsigned long long)r.out_of_sequence,
                (unsigned long long)r.resyncs,
                (unsigned long long)r.evictions,
                (unsigned long long)r.reestablished, 100.0 * r.miss_rate,
                r.throughput_mps / 1e3);
    if (r.delivered != r.sent || r.send_failures != 0 ||
        r.out_of_sequence != 0 || r.context_misses != 0) {
      ok = false;
    }
  }
  std::printf("\ninvariants (every row): delivered == sent, zero failures, "
              "zero out-of-sequence records, zero NIC context misses -> %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
