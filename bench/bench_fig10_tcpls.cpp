// Figure 10: TCPLS comparison — unloaded RTT (§5.5).
//
// Paper: TCPLS outperforms every QUIC implementation by >= 2.4x, so it
// stands in for the QUIC family. Expected shape: SMT-sw 5-18 % lower
// latency than TCPLS; SMT-hw 12-18 % lower (TCPLS cannot use TLS offload,
// §2.1).
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<std::size_t> sizes =
      sweep<std::size_t>({64, 256, 1024, 4096, 16384});
  const std::vector<TransportKind> kinds = {
      TransportKind::tcpls, TransportKind::smt_sw, TransportKind::smt_hw};
  std::vector<const char*> names;
  for (const auto kind : kinds) names.push_back(transport_name(kind));

  std::vector<std::vector<double>> rtt;
  for (const std::size_t size : sizes) {
    std::vector<double> row;
    for (const auto kind : kinds) {
      RpcFabricConfig config;
      config.kind = kind;
      row.push_back(measure_unloaded_rtt_us(config, size));
    }
    rtt.push_back(std::move(row));
  }
  print_table("Figure 10: TCPLS vs SMT unloaded RTT [us]", "RPC size", sizes,
              names, rtt, "%10.2f");

  std::printf("\nshape checks (SMT lower is better):\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("  %6zu B: SMT-sw vs TCPLS %+5.1f%%   SMT-hw vs TCPLS %+5.1f%%\n",
                sizes[i], 100.0 * (rtt[i][1] - rtt[i][0]) / rtt[i][0],
                100.0 * (rtt[i][2] - rtt[i][0]) / rtt[i][0]);
  }
  return 0;
}
