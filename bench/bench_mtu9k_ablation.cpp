// §5.2 "Impact of a larger MTU": 8 KB RPC throughput with a 9 KB MTU,
// where one message fits a single packet. Paper: SMT gains 13-28 % (hw) /
// 16-31 % (sw) over the 1.5 KB-MTU runs.
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<std::size_t> concurrencies =
      sweep<std::size_t>({50, 100, 150});
  const std::vector<TransportKind> kinds = {
      TransportKind::ktls_sw, TransportKind::ktls_hw, TransportKind::smt_sw,
      TransportKind::smt_hw};

  std::printf("== §5.2 MTU ablation: 8 KB RPC throughput [M RPC/s] ==\n");
  std::printf("%-12s%-10s", "concurrency", "MTU");
  for (const auto kind : kinds) std::printf("%10s", transport_name(kind));
  std::printf("\n");

  std::map<std::pair<std::size_t, std::size_t>, std::vector<double>> rows;
  for (const std::size_t concurrency : concurrencies) {
    for (const std::size_t mtu : {std::size_t{1500}, std::size_t{9000}}) {
      std::printf("%-12zu%-10zu", concurrency, mtu);
      std::vector<double> row;
      for (const auto kind : kinds) {
        RpcFabricConfig config;
        config.kind = kind;
        config.mtu_payload = mtu;
        row.push_back(measure_throughput_rps(config, 8192, concurrency, 6000) /
                      1e6);
        std::printf("%10.3f", row.back());
      }
      rows[{concurrency, mtu}] = row;
      std::printf("\n");
    }
  }

  std::printf("\nshape checks (9 KB vs 1.5 KB MTU; paper: SMT-sw +16-31%%, "
              "SMT-hw +13-28%%):\n");
  for (const std::size_t concurrency : concurrencies) {
    const auto& small = rows[{concurrency, 1500}];
    const auto& jumbo = rows[{concurrency, 9000}];
    std::printf("  conc %3zu: SMT-sw %+5.1f%%   SMT-hw %+5.1f%%\n", concurrency,
                100.0 * (jumbo[2] - small[2]) / small[2],
                100.0 * (jumbo[3] - small[3]) / small[3]);
  }
  return 0;
}
