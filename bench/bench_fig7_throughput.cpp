// Figure 7: concurrent RPC throughput (§5.2).
//
// Paper methodology: 12 application threads + 4 softirq threads per host,
// 50-200 concurrent RPCs, sizes 64 B / 1 KB / 8 KB (90 % of production
// RPCs are < 10 KB). Expected shape: SMT beats kTLS by 16-41 % for 64 B
// and 1 KB; SMT LOSES to kTLS by 3-15 % at 8 KB (Homa's large-message
// immaturity); the HW-offload advantage is larger than in the unloaded
// RTT test because CPU cycles are the bottleneck.
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<std::size_t> sizes = sweep<std::size_t>({64, 1024, 8192});
  const std::vector<std::size_t> concurrencies =
      sweep<std::size_t>({50, 100, 150, 200});
  const std::vector<TransportKind> kinds = {
      TransportKind::tcp,    TransportKind::ktls_sw, TransportKind::ktls_hw,
      TransportKind::homa,   TransportKind::smt_sw,  TransportKind::smt_hw};
  std::vector<const char*> names;
  for (const auto kind : kinds) names.push_back(transport_name(kind));

  for (const std::size_t size : sizes) {
    std::vector<std::vector<double>> rows;
    for (const std::size_t concurrency : concurrencies) {
      std::vector<double> row;
      for (const auto kind : kinds) {
        RpcFabricConfig config;
        config.kind = kind;
        const std::size_t ops = size >= 8192 ? 6000 : 12000;
        row.push_back(
            measure_throughput_rps(config, size, concurrency, ops) / 1e6);
      }
      rows.push_back(std::move(row));
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 7: throughput [M RPC/s], %zu B RPCs", size);
    print_table(title, "concurrency", concurrencies, names, rows, "%10.3f");

    std::printf("shape: SMT-sw vs kTLS-sw / SMT-hw vs kTLS-hw:");
    for (std::size_t i = 0; i < concurrencies.size(); ++i) {
      std::printf("  %+.0f%%/%+.0f%%",
                  100.0 * (rows[i][4] - rows[i][1]) / rows[i][1],
                  100.0 * (rows[i][5] - rows[i][2]) / rows[i][2]);
    }
    std::printf("\n");
  }

  // Doorbell amortisation: the batched NIC datapath pays per_doorbell_cost
  // once per drained burst instead of once per descriptor. tx_burst = 1
  // degenerates to the unbatched path; tx_burst = 16 amortises the fixed
  // cost 16x under load, lifting the NIC's descriptor ceiling well above
  // the CPU plateau.
  std::printf("\n== Doorbell amortisation: SMT-hw 1 KB RPCs, tx_burst 16 vs 1 "
              "==\n%-12s%12s%12s%10s\n",
              "concurrency", "burst=1", "burst=16", "gain");
  const std::vector<std::size_t> burst_concurrencies =
      sweep<std::size_t>({100, 200});
  for (const std::size_t concurrency : burst_concurrencies) {
    RpcFabricConfig config;
    config.kind = TransportKind::smt_hw;
    config.tx_burst = 1;
    const std::size_t ops = 12000;
    const double unbatched =
        measure_throughput_rps(config, 1024, concurrency, ops) / 1e6;
    config.tx_burst = 16;
    const double batched =
        measure_throughput_rps(config, 1024, concurrency, ops) / 1e6;
    std::printf("%-12zu%12.3f%12.3f%+9.1f%%\n", concurrency, unbatched,
                batched, 100.0 * (batched - unbatched) / unbatched);
  }
  return 0;
}
