// Figure 7: concurrent RPC throughput (§5.2).
//
// Paper methodology: 12 application threads + 4 softirq threads per host,
// 50-200 concurrent RPCs, sizes 64 B / 1 KB / 8 KB (90 % of production
// RPCs are < 10 KB). Expected shape: SMT beats kTLS by 16-41 % for 64 B
// and 1 KB; SMT LOSES to kTLS by 3-15 % at 8 KB (Homa's large-message
// immaturity); the HW-offload advantage is larger than in the unloaded
// RTT test because CPU cycles are the bottleneck.
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<std::size_t> sizes = sweep<std::size_t>({64, 1024, 8192});
  const std::vector<std::size_t> concurrencies =
      sweep<std::size_t>({50, 100, 150, 200});
  const std::vector<TransportKind> kinds = {
      TransportKind::tcp,    TransportKind::ktls_sw, TransportKind::ktls_hw,
      TransportKind::homa,   TransportKind::smt_sw,  TransportKind::smt_hw};
  std::vector<const char*> names;
  for (const auto kind : kinds) names.push_back(transport_name(kind));

  for (const std::size_t size : sizes) {
    std::vector<std::vector<double>> rows;
    for (const std::size_t concurrency : concurrencies) {
      std::vector<double> row;
      for (const auto kind : kinds) {
        RpcFabricConfig config;
        config.kind = kind;
        const std::size_t ops = size >= 8192 ? 6000 : 12000;
        row.push_back(
            measure_throughput_rps(config, size, concurrency, ops) / 1e6);
      }
      rows.push_back(std::move(row));
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 7: throughput [M RPC/s], %zu B RPCs", size);
    print_table(title, "concurrency", concurrencies, names, rows, "%10.3f");

    std::printf("shape: SMT-sw vs kTLS-sw / SMT-hw vs kTLS-hw:");
    for (std::size_t i = 0; i < concurrencies.size(); ++i) {
      std::printf("  %+.0f%%/%+.0f%%",
                  100.0 * (rows[i][4] - rows[i][1]) / rows[i][1],
                  100.0 * (rows[i][5] - rows[i][2]) / rows[i][2]);
    }
    std::printf("\n");
  }

  // Burst-amortisation comparisons: the batched datapaths pay their fixed
  // per-batch cost (TX doorbell / RX interrupt) once per drained burst
  // instead of once per descriptor/frame; burst = 1 degenerates to the
  // unbatched path. One helper runs both so the methodology (1 KB SMT-hw
  // RPCs, same concurrency sweep, same op budget) cannot drift apart.
  const std::vector<std::size_t> burst_concurrencies =
      sweep<std::size_t>({100, 200});
  const auto burst_comparison =
      [&](const char* title, const char* knob, const char* json_prefix,
          const std::function<void(RpcFabricConfig&, std::size_t)>& set_burst) {
        std::printf("\n== %s: SMT-hw 1 KB RPCs, %s 16 vs 1 ==\n"
                    "%-12s%12s%12s%10s\n",
                    title, knob, "concurrency", "burst=1", "burst=16", "gain");
        for (const std::size_t concurrency : burst_concurrencies) {
          constexpr std::size_t kOps = 12000;
          RpcFabricConfig config;
          config.kind = TransportKind::smt_hw;
          set_burst(config, 1);
          const double unbatched =
              measure_throughput_rps(config, 1024, concurrency, kOps) / 1e6;
          set_burst(config, 16);
          const double batched =
              measure_throughput_rps(config, 1024, concurrency, kOps) / 1e6;
          std::printf("%-12zu%12.3f%12.3f%+9.1f%%\n", concurrency, unbatched,
                      batched, 100.0 * (batched - unbatched) / unbatched);
          json_metric(std::string(json_prefix) + "1_mrps_c" +
                          std::to_string(concurrency),
                      unbatched);
          json_metric(std::string(json_prefix) + "16_mrps_c" +
                          std::to_string(concurrency),
                      batched);
        }
      };
  burst_comparison(
      "Doorbell amortisation", "tx_burst", "tx_burst",
      [](RpcFabricConfig& config, std::size_t burst) { config.tx_burst = burst; });
  burst_comparison(
      "RX interrupt coalescing", "rx_burst", "rx_burst",
      [](RpcFabricConfig& config, std::size_t burst) { config.rx_burst = burst; });

  // Per-ring interrupt rates: each RX ring runs its OWN coalescing state
  // (the per-ring ethtool contract), so interrupt counts — and the IRQ CPU
  // they charge to each ring's affinity softirq core — are per-ring
  // figures, not one host-global number.
  {
    constexpr std::size_t kConcurrency = 100;
    constexpr std::size_t kOps = 12000;
    RpcFabricConfig config;
    config.kind = TransportKind::smt_hw;
    std::printf("\n== Per-ring RX interrupt rates: SMT-hw 1 KB RPCs, "
                "c=%zu ==\n%-6s%14s%14s%16s%14s\n",
                kConcurrency, "ring", "server intrs", "server frames",
                "frames/intr", "IRQ core");
    measure_throughput_rps(
        config, 1024, kConcurrency, kOps, [](RpcFabric& fabric) {
          stack::Host& server = fabric.server_host();
          const sim::Nic& nic = server.nic();
          double elapsed_s = to_sec(fabric.loop().now());
          std::uint64_t total_intrs = 0;
          for (std::size_t ring = 0; ring < nic.rx_ring_count(); ++ring) {
            const sim::RxRingStats stats = nic.rx_ring_stats(ring);
            total_intrs += stats.interrupts;
            std::printf("%-6zu%14llu%14llu%16.1f%14zu\n", ring,
                        static_cast<unsigned long long>(stats.interrupts),
                        static_cast<unsigned long long>(stats.frames),
                        stats.interrupts > 0
                            ? double(stats.frames) / double(stats.interrupts)
                            : 0.0,
                        server.irq_affinity(ring));
            json_metric("server_ring" + std::to_string(ring) + "_intrs",
                        double(stats.interrupts));
          }
          // Softirq-core IRQ time only (doorbells charged to app cores are
          // excluded — the denominator is softirq-core time). Counters are
          // cumulative, so both rate and share cover the FULL run
          // including warmup — indicative load figures, not directly
          // comparable to the measured-phase RPC/s above.
          std::uint64_t softirq_irq_ns = 0;
          for (std::size_t i = 0; i < server.softirq_core_count(); ++i) {
            softirq_irq_ns += server.softirq_core(i).irq_busy_ns();
          }
          std::printf("server interrupt rate (full run): %.0f intr/s; IRQ "
                      "CPU %.2f%% of softirq cores\n",
                      elapsed_s > 0 ? double(total_intrs) / elapsed_s : 0.0,
                      100.0 * double(softirq_irq_ns) /
                          (double(fabric.loop().now()) *
                           double(server.softirq_core_count())));
        });
  }

  // Steered vs static receive steering. The fabric's SMT traffic is ONE
  // five-tuple, so static RSS lands every server frame on one ring and its
  // affinity core absorbs the whole interrupt load — the PR 3 throughput
  // drop (the paper's §5.2 softirq-thread ceiling). Steering = the
  // irqbalance-style rebalancer (hot-vector migration + single-flow
  // indirection spread) on top of the default indirection table; per-ring
  // frame counts show the flow rotating rings instead of soaking one. The
  // recovery is largest at 64 B, where the per-RPC interrupt rate is
  // highest and the hot vector's queueing tax dominates the RPC latency.
  {
    constexpr std::size_t kConcurrency = 200;
    constexpr std::size_t kOps = 12000;
    const std::vector<std::size_t> steer_sizes = sweep<std::size_t>({64, 1024});
    const auto run_mode = [&](const char* mode, std::size_t size,
                              SimDuration period) {
      RpcFabricConfig config;
      config.kind = TransportKind::smt_hw;
      config.irq_rebalance_period = period;
      std::size_t active_rings = 0;
      std::uint64_t migrations = 0;
      std::vector<std::uint64_t> ring_frames;
      const double mrps =
          measure_throughput_rps(
              config, size, kConcurrency, kOps,
              [&](RpcFabric& fabric) {
                const sim::Nic& nic = fabric.server_host().nic();
                for (std::size_t r = 0; r < nic.rx_ring_count(); ++r) {
                  const std::uint64_t frames = nic.rx_ring_stats(r).frames;
                  ring_frames.push_back(frames);
                  if (frames > 0) ++active_rings;
                }
                migrations =
                    fabric.server_host().irq_rebalance_stats().migrations;
              }) /
          1e6;
      std::printf("%-10s%14.3f%16zu%18llu\n", mode, mrps, active_rings,
                  static_cast<unsigned long long>(migrations));
      std::printf("  per-ring server frames:");
      for (std::size_t r = 0; r < ring_frames.size(); ++r) {
        std::printf(" ring%zu=%llu", r,
                    static_cast<unsigned long long>(ring_frames[r]));
      }
      std::printf("\n");
      const std::string prefix =
          std::string(mode) + "_" + std::to_string(size) + "B";
      json_metric(prefix + "_mrps", mrps);
      json_metric(prefix + "_active_rings", double(active_rings));
      return mrps;
    };
    for (const std::size_t size : steer_sizes) {
      std::printf("\n== Receive steering: SMT-hw %zu B RPCs, c=%zu, "
                  "single flow ==\n%-10s%14s%16s%18s\n",
                  size, kConcurrency, "mode", "M RPC/s", "active rings",
                  "migrations");
      const double static_mrps = run_mode("static", size, 0);
      const double steered_mrps = run_mode("steered", size, usec(100));
      std::printf("steering gain at %zu B: %+.1f%%\n", size,
                  100.0 * (steered_mrps - static_mrps) / static_mrps);
    }
  }
  return 0;
}
