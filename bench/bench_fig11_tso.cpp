// Figure 11: effect of TSO on SMT-HW unloaded RTT (§7 "Segmentation").
//
// Without TSO (the IPv6 case: no IPID to carry intra-segment offsets),
// every packet is posted to the NIC as its own descriptor. Expected shape:
// the penalty grows with RPC size but stays modest — Homa never used TSO
// checksum offload anyway, and SMT's integrity comes from AEAD (§7).
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<std::size_t> sizes =
      sweep<std::size_t>({512, 1024, 2048, 4096, 8192});
  std::vector<std::vector<double>> rtt;
  for (const std::size_t size : sizes) {
    RpcFabricConfig with_tso;
    with_tso.kind = TransportKind::smt_hw;
    with_tso.tso_enabled = true;
    RpcFabricConfig without_tso = with_tso;
    without_tso.tso_enabled = false;
    rtt.push_back({measure_unloaded_rtt_us(with_tso, size),
                   measure_unloaded_rtt_us(without_tso, size)});
  }
  print_table("Figure 11: SMT-HW RTT [us], TSO on/off", "RPC size", sizes,
              {"SMT-HW-TSO", "w/o-TSO"}, rtt, "%12.2f");

  std::printf("\nshape checks (penalty of disabling TSO):\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("  %6zu B: +%.1f%%\n", sizes[i],
                100.0 * (rtt[i][1] - rtt[i][0]) / rtt[i][0]);
  }
  return 0;
}
