// Figure 12: key-exchange latency for the five handshake methods (§5.6).
//
//   Init-1RTT — standard TLS 1.3 full handshake (baseline);
//   Init      — SMT-ticket 0-RTT, no forward secrecy;
//   Init-FS   — SMT-ticket 0-RTT + server ephemeral upgrade;
//   Rsmp      — PSK resumption (pre-generated keys, no ECDHE);
//   Rsmp-FS   — PSK resumption with ECDHE.
//
// Latency = REAL wall-clock crypto from our library (both endpoints'
// handshake operations) + simulated network round trips + the first data
// exchange at each RPC size. Expected shape: Init beats Init-1RTT by
// ~52-55 %, Init-FS by ~37-44 %; Rsmp-FS minus Rsmp equals roughly one
// ECDH per side (paper: 338-387 us; larger here — portable ECC).
#include <map>

#include "bench_common.hpp"
#include "crypto/drbg.hpp"
#include "tls/engine.hpp"

using namespace smt;
using namespace smt::bench;
using namespace smt::tls;

namespace {

struct Pki {
  crypto::HmacDrbg rng{to_bytes(std::string_view("fig12-bench"))};
  CertificateAuthority ca = CertificateAuthority::create("dc-root", rng);
  crypto::EcdsaKeyPair server_key;
  CertChain chain;
  crypto::EcdhKeyPair longterm;
  SmtTicket ticket;

  Pki() {
    server_key = crypto::ecdsa_keypair_from_seed(rng.generate(32));
    chain.certs.push_back(ca.issue(
        "server", crypto::encode_point(server_key.public_key), 0, 1u << 30));
    longterm = crypto::ecdh_keypair_from_seed(rng.generate(32));
    ticket = issue_smt_ticket(ca, "server",
                              crypto::encode_point(longterm.public_key), chain,
                              0, 1u << 30);
  }
};

enum class Method { init_1rtt, init, init_fs, rsmp, rsmp_fs };

const char* method_name(Method m) {
  switch (m) {
    case Method::init_1rtt: return "Init-1RTT";
    case Method::init: return "Init";
    case Method::init_fs: return "Init-FS";
    case Method::rsmp: return "Rsmp";
    case Method::rsmp_fs: return "Rsmp-FS";
  }
  return "?";
}

/// Runs one handshake; returns (total crypto us, number of RTTs before the
/// requester holds the response to its first RPC).
std::pair<double, double> run_handshake(Pki& pki, Method method) {
  ClientConfig cc;
  cc.server_name = "server";
  cc.trusted_ca = pki.ca.public_key();
  cc.now = 100;
  cc.op_clock = bench::wall_clock_ns;  // crypto_us needs real durations
  ServerConfig sc;
  sc.chain = pki.chain;
  sc.sig_key = pki.server_key;
  sc.trusted_ca = pki.ca.public_key();
  sc.now = 100;
  sc.op_clock = bench::wall_clock_ns;
  sc.accept_early_data = true;
  sc.smt_key_lookup =
      [&pki](ByteView id) -> std::optional<crypto::EcdhKeyPair> {
    if (to_bytes(id) == pki.ticket.id()) return pki.longterm;
    return std::nullopt;
  };

  // Pre-generated standby keys (§4.5.1) for everything except Init-1RTT.
  if (method != Method::init_1rtt) {
    cc.pregen_ephemeral = crypto::ecdh_keypair_from_seed(pki.rng.generate(32));
    sc.pregen_ephemeral = crypto::ecdh_keypair_from_seed(pki.rng.generate(32));
  }

  static PskInfo session_psk;  // carried from a setup full handshake below
  switch (method) {
    case Method::init_1rtt:
      break;
    case Method::init:
      cc.smt_ticket = pki.ticket;
      cc.early_data = true;
      cc.request_fs = false;
      break;
    case Method::init_fs:
      cc.smt_ticket = pki.ticket;
      cc.early_data = true;
      cc.request_fs = true;
      break;
    case Method::rsmp:
    case Method::rsmp_fs: {
      // Setup connection to mint a ticket (outside the measured path).
      Pki setup;
      ClientConfig scc = cc;
      scc.psk.reset();
      scc.smt_ticket.reset();
      ServerConfig ssc = sc;
      ClientHandshake c0(scc, pki.rng);
      ServerHandshake s0(ssc, pki.rng);
      auto f1 = c0.start();
      auto sf = s0.on_client_flight(f1.value());
      auto f2 = c0.on_server_flight(sf.value());
      (void)s0.on_client_finished(f2.value());
      auto [ticket_bytes, psk] = s0.make_session_ticket();
      session_psk = psk;
      cc.psk = psk;
      cc.early_data = true;
      cc.psk_ecdhe = method == Method::rsmp_fs;
      sc.psk_lookup = [](ByteView id) -> std::optional<Bytes> {
        if (to_bytes(id) == session_psk.identity) return session_psk.key;
        return std::nullopt;
      };
      break;
    }
  }

  ClientHandshake client(cc, pki.rng);
  ServerHandshake server(sc, pki.rng);
  auto f1 = client.start();
  auto sf = server.on_client_flight(f1.value());
  auto f2 = client.on_server_flight(sf.value());
  const Status done = server.on_client_finished(f2.value());
  if (!done.ok()) std::printf("HANDSHAKE FAILED: %s\n", done.message().c_str());

  const double crypto_us =
      client.timings().total_us() + server.timings().total_us();
  // RTTs until the client holds its first RPC response: with accepted
  // 0-RTT data the request rides flight 1 (1 RTT total); a full handshake
  // needs the handshake RTT first (2 RTTs total).
  const bool zero_rtt_data = server.secrets().early_data_accepted;
  return {crypto_us, zero_rtt_data ? 1.0 : 2.0};
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  Pki pki;
  const std::vector<std::size_t> sizes =
      sweep<std::size_t>({64, 128, 256, 1024, 4096, 8192});

  // Simulated data-exchange RTT per size (SMT-sw fabric).
  std::map<std::size_t, double> rtt_us;
  for (const std::size_t size : sizes) {
    RpcFabricConfig config;
    config.kind = TransportKind::smt_sw;
    rtt_us[size] = measure_unloaded_rtt_us(config, size, 3, 10);
  }

  const Method methods[] = {Method::init, Method::init_fs, Method::init_1rtt,
                            Method::rsmp, Method::rsmp_fs};
  std::printf("== Figure 12: key-exchange + first-RPC latency [us] ==\n");
  std::printf("%-10s", "RPC size");
  for (const Method m : methods) std::printf("%12s", method_name(m));
  std::printf("\n");

  std::map<Method, double> crypto_cache, rtts_cache;
  for (const Method m : methods) {
    // Average the crypto cost over a few runs.
    double crypto = 0, rtts = 0;
    const int kIters = smoke() ? 1 : 5;
    for (int i = 0; i < kIters; ++i) {
      const auto [c, r] = run_handshake(pki, m);
      crypto += c;
      rtts = r;
    }
    crypto_cache[m] = crypto / kIters;
    rtts_cache[m] = rtts;
  }

  std::vector<std::map<Method, double>> totals;
  for (const std::size_t size : sizes) {
    std::printf("%-10zu", size);
    std::map<Method, double> row;
    for (const Method m : methods) {
      row[m] = crypto_cache[m] + rtts_cache[m] * rtt_us[size];
      std::printf("%12.0f", row[m]);
    }
    totals.push_back(row);
    std::printf("\n");
  }

  std::printf("\nshape checks (vs Init-1RTT; paper: Init 52-55%% faster, "
              "Init-FS 37-44%% faster):\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double base = totals[i][Method::init_1rtt];
    std::printf("  %6zu B: Init %-+5.1f%%  Init-FS %-+5.1f%%  Rsmp-FS minus "
                "Rsmp: %.0f us\n",
                sizes[i], 100.0 * (totals[i][Method::init] - base) / base,
                100.0 * (totals[i][Method::init_fs] - base) / base,
                totals[i][Method::rsmp_fs] - totals[i][Method::rsmp]);
  }
  return 0;
}
