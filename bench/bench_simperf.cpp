// Simulator self-performance harness: how fast does the SIMULATOR run,
// in wall-clock terms, on the fig7-shaped closed-loop RPC scenario?
//
// Every other bench reports virtual-time results (RTTs, RPC/s of simulated
// time) that are bit-identical across machines. This bench instead measures
// the real-time cost of producing them: events/sec and packets/sec of wall
// clock, wall-milliseconds per simulated second, heap allocations per RPC,
// and peak RSS. It is the regression baseline for datapath-memory and
// event-engine work (PayloadSlice slabs, the pooled callback engine): those
// PRs must move THESE numbers while leaving every virtual-time bench
// byte-identical.
//
// The headline scenario is fig7's 1 KB c=200 SMT-hw row — the workload the
// paper's throughput ceiling discussion (§5.2) is stated in.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"

// --- allocation counting ---------------------------------------------------
//
// Global operator new/delete overrides count every heap allocation in the
// process. This is what verifies the reserve()/slab/small-buffer work: the
// wire-encode hot paths and the event engine are supposed to stop paying
// malloc per record/event, and allocs-per-RPC is the observable.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

// Per-thread tallies, flushed to the globals in batches: the sharded
// engine runs one allocating thread per shard, and a fetch_add per
// allocation would bounce these two cache lines between cores hard
// enough to serialize the very parallelism the shard-scaling scenario
// measures. Batching keeps the hot path core-local; the main thread
// flushes explicitly around the single-threaded measured runs, so
// allocs/rpc stays exact (worker-thread residues of < 1024 allocs can
// linger, but no metric reads those).
thread_local std::uint64_t t_alloc_count = 0;
thread_local std::uint64_t t_alloc_bytes = 0;

inline void flush_alloc_tally() noexcept {
  g_alloc_count.fetch_add(t_alloc_count, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(t_alloc_bytes, std::memory_order_relaxed);
  t_alloc_count = 0;
  t_alloc_bytes = 0;
}

inline void note_alloc(std::size_t size) noexcept {
  ++t_alloc_count;
  t_alloc_bytes += size;
  if (t_alloc_count >= 1024) flush_alloc_tally();
}
}  // namespace

void* operator new(std::size_t size) {
  note_alloc(size);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc(size);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace smt::bench {
namespace {

struct SimPerfResult {
  double wall_sec = 0;          // real time spent inside loop().run()
  double virtual_sec = 0;       // simulated time covered by the run
  std::uint64_t events = 0;     // event-loop callbacks executed
  std::uint64_t packets = 0;    // NIC packets emitted (client + server)
  std::uint64_t allocs = 0;     // operator new calls during the run
  std::uint64_t completed = 0;  // RPCs completed
  double rpcs_per_vsec = 0;     // virtual-time throughput (must not change)
};

/// Closed-loop fig7-style run: `concurrency` outstanding RPCs over 12
/// client app cores, wall-clock instrumented around the event loop.
SimPerfResult run_scenario(RpcFabricConfig config, std::size_t rpc_bytes,
                           std::size_t concurrency, std::size_t total_ops) {
  RpcFabric fabric(config);
  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < concurrency; ++i) {
    channels.push_back(fabric.make_channel(i));
  }

  std::size_t issued = 0, completed = 0;
  SimTime first_completion = 0;
  SimTime last_completion = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    if (issued >= total_ops) return;
    ++issued;
    channels[slot]->call(Bytes(rpc_bytes, 0x5a), std::uint32_t(rpc_bytes),
                         [&, slot](SimDuration, Bytes) {
                           ++completed;
                           if (completed == 1) {
                             first_completion = fabric.loop().now();
                           }
                           if (completed == total_ops) {
                             last_completion = fabric.loop().now();
                           }
                           issue(slot);
                         });
  };
  for (std::size_t i = 0; i < concurrency; ++i) issue(i);

  flush_alloc_tally();
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t events = fabric.loop().run();
  const auto wall_end = std::chrono::steady_clock::now();
  flush_alloc_tally();

  SimPerfResult r;
  r.wall_sec = std::chrono::duration<double>(wall_end - wall_start).count();
  r.virtual_sec = to_sec(fabric.loop().now());
  r.events = events;
  r.packets = fabric.client_host().nic().counters().packets +
              fabric.server_host().nic().counters().packets;
  r.allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  r.completed = completed;
  const double window = to_sec(last_completion - first_completion);
  r.rpcs_per_vsec = window > 0 ? double(completed - 1) / window : 0;
  return r;
}

double peak_rss_mib() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return double(usage.ru_maxrss) / 1024.0;  // Linux: ru_maxrss is in KiB
}

// --- shard scaling ---------------------------------------------------------
//
// Multi-host scenario for the sharded engine (netsim/shard.hpp): K
// independent RpcFabric pairs share one ShardedEngine, client host of pair
// i on shard i%S and server host on shard (i+1)%S — so every pair's link
// crosses a shard boundary whenever S > 1, and S=1 degenerates to the
// plain single-threaded engine. Wall-clock events/s across S is THE
// headline number for the sharded engine; virtual-time results stay
// deterministic per shard count (shardN_virtual_end_ns is the witness CI
// can compare across runs).

struct ShardScalingResult {
  double wall_sec = 0;
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross_posts = 0;
  std::int64_t virtual_end_ns = 0;  // sum of per-pair last completions
};

/// Compute-bound multi-host ring: 8 forwarding nodes over S shards,
/// connected by Links whose deliveries cross shard boundaries, each node
/// charging a fixed arithmetic cost per packet. This is the ENGINE
/// scaling measurement: per-event work is core-local compute, so
/// events/s tracks the worker pool's real parallelism. (The RPC fleet
/// below is the opposite regime — pointer-chasing, memory-latency-bound
/// per-event work — whose scaling is capped by the host's memory
/// parallelism, not by the engine.)
ShardScalingResult run_shard_ring(std::size_t shards, std::size_t rounds) {
  constexpr std::size_t kHosts = 8;
  constexpr std::size_t kTokensPerHost = 64;
  const SimDuration propagation = usec(100);
  sim::ShardedEngine engine(shards, propagation);

  sim::LinkConfig lc;
  lc.bandwidth_gbps = 100.0;
  lc.propagation = propagation;
  std::vector<std::unique_ptr<sim::Link>> links;  // link h: host h -> h+1
  for (std::size_t h = 0; h < kHosts; ++h) {
    const std::size_t next = (h + 1) % kHosts;
    links.push_back(std::make_unique<sim::Link>(
        engine.loop(h % shards), engine.loop(next % shards), lc));
    if (h % shards != next % shards) {
      links.back()->a2b().set_remote_scheduler(
          engine.remote_scheduler(h % shards, next % shards));
    }
  }

  // Per-host state, touched only by that host's shard thread.
  struct Node {
    std::uint64_t forwarded = 0;
    SimTime last_rx = 0;
    double sink = 1.0;
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t h = 0; h < kHosts; ++h) {
    nodes.push_back(std::make_unique<Node>());
  }
  const std::uint64_t hop_budget = rounds * kTokensPerHost;
  for (std::size_t h = 0; h < kHosts; ++h) {
    Node& node = *nodes[h];
    sim::Link& out = *links[h];
    links[(h + kHosts - 1) % kHosts]->a2b().set_receiver(
        [&node, &out, hop_budget](sim::Packet pkt) {
          // ~3 us of register arithmetic: the simulated per-packet
          // forwarding cost, deliberately cache-resident.
          volatile double x = node.sink;
          for (int k = 0; k < 1000; ++k) x = x * 1.0000001;
          node.sink = x;
          if (++node.forwarded <= hop_budget) out.a2b().send(std::move(pkt));
        });
  }
  for (std::size_t h = 0; h < kHosts; ++h) {
    for (std::size_t t = 0; t < kTokensPerHost; ++t) {
      sim::Packet pkt;
      pkt.payload.assign(64, 0x5a);
      links[h]->a2b().send(std::move(pkt));
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t events = engine.run();
  const auto wall_end = std::chrono::steady_clock::now();

  ShardScalingResult r;
  r.wall_sec = std::chrono::duration<double>(wall_end - wall_start).count();
  r.events = events;
  r.windows = engine.stats().windows;
  r.cross_posts = engine.stats().cross_posts;
  for (std::size_t h = 0; h < kHosts; ++h) {
    r.completed += nodes[h]->forwarded;
    r.virtual_end_ns += std::int64_t(engine.now(h % shards));
  }
  return r;
}

ShardScalingResult run_shard_scaling(std::size_t shards, std::size_t pairs,
                                     std::size_t rpc_bytes,
                                     std::size_t concurrency,
                                     std::size_t ops_per_pair) {
  // Lookahead = link propagation: the widest window the conservative
  // contract allows for this topology (100 us keeps the barrier count low
  // enough that window work dwarfs synchronization cost).
  const SimDuration propagation = usec(100);
  sim::ShardedEngine engine(shards, propagation);

  // Per-pair state: everything in here is only ever touched by the pair's
  // client shard thread (channel completions run on the client loop), so
  // pairs on different shards share nothing.
  struct Pair {
    std::unique_ptr<RpcFabric> fabric;
    std::vector<std::unique_ptr<RpcChannel>> channels;
    std::size_t issued = 0;
    std::size_t completed = 0;
    SimTime last_completion = 0;
    std::function<void(std::size_t)> issue;
  };
  std::vector<std::unique_ptr<Pair>> fleet;

  for (std::size_t i = 0; i < pairs; ++i) {
    RpcFabricConfig config;
    config.kind = TransportKind::smt_hw;
    config.propagation = propagation;
    auto pair = std::make_unique<Pair>();
    pair->fabric = std::make_unique<RpcFabric>(
        config, engine, /*client_shard=*/i % shards,
        /*server_shard=*/(i + 1) % shards);
    for (std::size_t c = 0; c < concurrency; ++c) {
      pair->channels.push_back(pair->fabric->make_channel(c));
    }
    Pair& p = *pair;
    p.issue = [&p, rpc_bytes, ops_per_pair](std::size_t slot) {
      if (p.issued >= ops_per_pair) return;
      ++p.issued;
      p.channels[slot]->call(Bytes(rpc_bytes, 0x5a), std::uint32_t(rpc_bytes),
                             [&p, slot](SimDuration, Bytes) {
                               ++p.completed;
                               p.last_completion = p.fabric->loop().now();
                               p.issue(slot);
                             });
    };
    fleet.push_back(std::move(pair));
  }
  for (auto& pair : fleet) {
    for (std::size_t c = 0; c < concurrency; ++c) pair->issue(c);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t events = engine.run();
  const auto wall_end = std::chrono::steady_clock::now();

  ShardScalingResult r;
  r.wall_sec = std::chrono::duration<double>(wall_end - wall_start).count();
  r.events = events;
  r.windows = engine.stats().windows;
  r.cross_posts = engine.stats().cross_posts;
  for (const auto& pair : fleet) {
    r.completed += pair->completed;
    r.virtual_end_ns += std::int64_t(pair->last_completion);
  }
  return r;
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  using namespace smt;
  using namespace smt::bench;
  init(argc, argv);

  // fig7-shaped closed loop: SMT-hw, c=200 outstanding RPCs.
  const std::size_t concurrency = 200;
  const std::size_t total_ops = smoke() ? 6000 : 50000;

  std::printf("Simulator wall-clock performance (fig7 scenario, c=%zu, "
              "%zu ops)\n",
              concurrency, total_ops);
  std::printf("%-14s %12s %12s %14s %12s %12s %12s\n", "scenario",
              "wall_ms", "events/s", "packets/s", "ms/vsec", "allocs/rpc",
              "MRPC/vs");

  const std::vector<std::size_t> sizes = smoke()
                                             ? std::vector<std::size_t>{1024}
                                             : std::vector<std::size_t>{1024,
                                                                        64};
  for (const std::size_t rpc_bytes : sizes) {
    RpcFabricConfig config;
    config.kind = TransportKind::smt_hw;
    const SimPerfResult r =
        run_scenario(config, rpc_bytes, concurrency, total_ops);
    const double events_per_sec = double(r.events) / r.wall_sec;
    const double packets_per_sec = double(r.packets) / r.wall_sec;
    const double ms_per_vsec = r.wall_sec * 1e3 / r.virtual_sec;
    const double allocs_per_rpc = double(r.allocs) / double(r.completed);
    std::printf("smt-hw %5zuB %12.1f %12.0f %14.0f %12.1f %12.1f %12.3f\n",
                rpc_bytes, r.wall_sec * 1e3, events_per_sec, packets_per_sec,
                ms_per_vsec, allocs_per_rpc, r.rpcs_per_vsec / 1e6);
    if (rpc_bytes == 1024) {
      json_metric("events_per_sec", events_per_sec);
      json_metric("packets_per_sec", packets_per_sec);
      json_metric("wall_ms_per_virtual_sec", ms_per_vsec);
      json_metric("allocs_per_rpc", allocs_per_rpc);
      json_metric("virtual_mrpc_per_sec", r.rpcs_per_vsec / 1e6);
      json_metric("events", double(r.events));
      json_metric("completed", double(r.completed));
    }
  }
  // --- shard scaling sweep -------------------------------------------------
  // `--shards N` pins a single shard count; the default sweeps 1/2/4.
  std::vector<std::size_t> shard_counts = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = {std::size_t(std::atoi(argv[i + 1]))};
    }
  }
  // Interleaved repetitions, best wall time kept per shard count: shared
  // CI runners throttle unpredictably on a scale of seconds, so a single
  // 1-shard-then-N-shard sequence confounds scaling with host drift.
  // Interleaving rides every shard count through the same throttle
  // phases, and the min is the standard noise-robust wall-clock estimate.
  const auto sweep_shards =
      [&](const char* tag, int reps,
          const std::function<ShardScalingResult(std::size_t)>& scenario) {
        std::printf("%-8s %12s %12s %10s %12s %14s %10s\n", "shards",
                    "wall_ms", "events/s", "windows", "cross_posts",
                    "virt_end_ns", "speedup");
        std::vector<ShardScalingResult> best(shard_counts.size());
        for (int rep = 0; rep < reps; ++rep) {
          for (std::size_t i = 0; i < shard_counts.size(); ++i) {
            const ShardScalingResult r = scenario(shard_counts[i]);
            if (best[i].wall_sec == 0 || r.wall_sec < best[i].wall_sec) {
              best[i] = r;
            }
          }
        }
        double base_events_per_sec = 0;
        for (std::size_t i = 0; i < shard_counts.size(); ++i) {
          const std::size_t shards = shard_counts[i];
          const ShardScalingResult& r = best[i];
          const double events_per_sec = double(r.events) / r.wall_sec;
          if (base_events_per_sec == 0) base_events_per_sec = events_per_sec;
          const double speedup = events_per_sec / base_events_per_sec;
          std::printf("%-8zu %12.1f %12.0f %10llu %12llu %14lld %9.2fx\n",
                      shards, r.wall_sec * 1e3, events_per_sec,
                      static_cast<unsigned long long>(r.windows),
                      static_cast<unsigned long long>(r.cross_posts),
                      static_cast<long long>(r.virtual_end_ns), speedup);
          char key[80];
          std::snprintf(key, sizeof key, "%s_shard%zu_events_per_sec", tag,
                        shards);
          json_metric(key, events_per_sec);
          std::snprintf(key, sizeof key, "%s_shard%zu_virtual_end_ns", tag,
                        shards);
          json_metric(key, double(r.virtual_end_ns));
          if (shards == shard_counts.back() &&
              shards != shard_counts.front()) {
            std::snprintf(key, sizeof key, "%s_shard_speedup_max_vs_1", tag);
            json_metric(key, speedup);
            std::snprintf(key, sizeof key, "%s_shard_cross_posts", tag);
            json_metric(key, double(r.cross_posts));
          }
        }
      };

  const std::size_t ring_rounds = smoke() ? 40 : 200;
  std::printf("\nShard scaling, compute-bound ring (8 hosts, 64 tokens/host, "
              "%zu rounds)\n",
              ring_rounds);
  sweep_shards("ring", /*reps=*/5, [&](std::size_t shards) {
    return run_shard_ring(shards, ring_rounds);
  });

  const std::size_t pairs = 4;
  const std::size_t per_pair_concurrency = 50;
  const std::size_t ops_per_pair = smoke() ? 1500 : 12500;
  std::printf("\nShard scaling, RPC fleet (%zu host pairs, c=%zu/pair, "
              "%zu ops/pair, smt-hw 1024B; memory-latency-bound — scaling "
              "capped by the host's memory parallelism)\n",
              pairs, per_pair_concurrency, ops_per_pair);
  sweep_shards("rpc", /*reps=*/3, [&](std::size_t shards) {
    return run_shard_scaling(shards, pairs, 1024, per_pair_concurrency,
                             ops_per_pair);
  });

  json_metric("peak_rss_mib", peak_rss_mib());
  std::printf("peak RSS: %.1f MiB\n", peak_rss_mib());
  return 0;
}
