// Simulator self-performance harness: how fast does the SIMULATOR run,
// in wall-clock terms, on the fig7-shaped closed-loop RPC scenario?
//
// Every other bench reports virtual-time results (RTTs, RPC/s of simulated
// time) that are bit-identical across machines. This bench instead measures
// the real-time cost of producing them: events/sec and packets/sec of wall
// clock, wall-milliseconds per simulated second, heap allocations per RPC,
// and peak RSS. It is the regression baseline for datapath-memory and
// event-engine work (PayloadSlice slabs, the pooled callback engine): those
// PRs must move THESE numbers while leaving every virtual-time bench
// byte-identical.
//
// The headline scenario is fig7's 1 KB c=200 SMT-hw row — the workload the
// paper's throughput ceiling discussion (§5.2) is stated in.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"

// --- allocation counting ---------------------------------------------------
//
// Global operator new/delete overrides count every heap allocation in the
// process. This is what verifies the reserve()/slab/small-buffer work: the
// wire-encode hot paths and the event engine are supposed to stop paying
// malloc per record/event, and allocs-per-RPC is the observable.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace smt::bench {
namespace {

struct SimPerfResult {
  double wall_sec = 0;          // real time spent inside loop().run()
  double virtual_sec = 0;       // simulated time covered by the run
  std::uint64_t events = 0;     // event-loop callbacks executed
  std::uint64_t packets = 0;    // NIC packets emitted (client + server)
  std::uint64_t allocs = 0;     // operator new calls during the run
  std::uint64_t completed = 0;  // RPCs completed
  double rpcs_per_vsec = 0;     // virtual-time throughput (must not change)
};

/// Closed-loop fig7-style run: `concurrency` outstanding RPCs over 12
/// client app cores, wall-clock instrumented around the event loop.
SimPerfResult run_scenario(RpcFabricConfig config, std::size_t rpc_bytes,
                           std::size_t concurrency, std::size_t total_ops) {
  RpcFabric fabric(config);
  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < concurrency; ++i) {
    channels.push_back(fabric.make_channel(i));
  }

  std::size_t issued = 0, completed = 0;
  SimTime first_completion = 0;
  SimTime last_completion = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    if (issued >= total_ops) return;
    ++issued;
    channels[slot]->call(Bytes(rpc_bytes, 0x5a), std::uint32_t(rpc_bytes),
                         [&, slot](SimDuration, Bytes) {
                           ++completed;
                           if (completed == 1) {
                             first_completion = fabric.loop().now();
                           }
                           if (completed == total_ops) {
                             last_completion = fabric.loop().now();
                           }
                           issue(slot);
                         });
  };
  for (std::size_t i = 0; i < concurrency; ++i) issue(i);

  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t events = fabric.loop().run();
  const auto wall_end = std::chrono::steady_clock::now();

  SimPerfResult r;
  r.wall_sec = std::chrono::duration<double>(wall_end - wall_start).count();
  r.virtual_sec = to_sec(fabric.loop().now());
  r.events = events;
  r.packets = fabric.client_host().nic().counters().packets +
              fabric.server_host().nic().counters().packets;
  r.allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  r.completed = completed;
  const double window = to_sec(last_completion - first_completion);
  r.rpcs_per_vsec = window > 0 ? double(completed - 1) / window : 0;
  return r;
}

double peak_rss_mib() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return double(usage.ru_maxrss) / 1024.0;  // Linux: ru_maxrss is in KiB
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  using namespace smt;
  using namespace smt::bench;
  init(argc, argv);

  // fig7-shaped closed loop: SMT-hw, c=200 outstanding RPCs.
  const std::size_t concurrency = 200;
  const std::size_t total_ops = smoke() ? 6000 : 50000;

  std::printf("Simulator wall-clock performance (fig7 scenario, c=%zu, "
              "%zu ops)\n",
              concurrency, total_ops);
  std::printf("%-14s %12s %12s %14s %12s %12s %12s\n", "scenario",
              "wall_ms", "events/s", "packets/s", "ms/vsec", "allocs/rpc",
              "MRPC/vs");

  const std::vector<std::size_t> sizes = smoke()
                                             ? std::vector<std::size_t>{1024}
                                             : std::vector<std::size_t>{1024,
                                                                        64};
  for (const std::size_t rpc_bytes : sizes) {
    RpcFabricConfig config;
    config.kind = TransportKind::smt_hw;
    const SimPerfResult r =
        run_scenario(config, rpc_bytes, concurrency, total_ops);
    const double events_per_sec = double(r.events) / r.wall_sec;
    const double packets_per_sec = double(r.packets) / r.wall_sec;
    const double ms_per_vsec = r.wall_sec * 1e3 / r.virtual_sec;
    const double allocs_per_rpc = double(r.allocs) / double(r.completed);
    std::printf("smt-hw %5zuB %12.1f %12.0f %14.0f %12.1f %12.1f %12.3f\n",
                rpc_bytes, r.wall_sec * 1e3, events_per_sec, packets_per_sec,
                ms_per_vsec, allocs_per_rpc, r.rpcs_per_vsec / 1e6);
    if (rpc_bytes == 1024) {
      json_metric("events_per_sec", events_per_sec);
      json_metric("packets_per_sec", packets_per_sec);
      json_metric("wall_ms_per_virtual_sec", ms_per_vsec);
      json_metric("allocs_per_rpc", allocs_per_rpc);
      json_metric("virtual_mrpc_per_sec", r.rpcs_per_vsec / 1e6);
      json_metric("events", double(r.events));
      json_metric("completed", double(r.completed));
    }
  }
  json_metric("peak_rss_mib", peak_rss_mib());
  std::printf("peak RSS: %.1f MiB\n", peak_rss_mib());
  return 0;
}
