// Figure 9: NVMe-oF P50/P99 random-read latency over iodepth 1..8 (§5.4).
//
// Expected shape: at low iodepth the device service time masks transport
// differences (the paper could not show a Homa/SMT win at iodepth 1-4 P50);
// at deeper queues SMT cuts P50 by up to ~7-15 % and P99 by up to ~16-21 %
// versus kTLS; the hardware-offload delta stays in the noise (§5.4).
#include "apps/nvmeof.hpp"
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;
using namespace smt::apps;

namespace {

LatencyStats run_fio(TransportKind kind, std::size_t iodepth) {
  RpcFabricConfig config;
  config.kind = kind;
  RpcFabric fabric(config);
  NvmeDevice device(fabric.loop(), NvmeDeviceConfig{});
  NvmeTarget target(fabric, device);
  FioConfig fio;
  fio.iodepth = iodepth;
  fio.total_requests = iters(3000);
  FioClient client(fabric, fio);
  return client.run();
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  const std::vector<TransportKind> kinds = {
      TransportKind::tcp,    TransportKind::ktls_sw, TransportKind::ktls_hw,
      TransportKind::homa,   TransportKind::smt_sw,  TransportKind::smt_hw};
  const std::vector<std::size_t> iodepths = sweep<std::size_t>({1, 2, 4, 6, 8});

  for (const char* which : {"P50", "P99"}) {
    std::printf("\n== Figure 9: NVMe-oF %s latency [us], 4 KB random reads ==\n",
                which);
    std::printf("%-8s", "iodepth");
    for (const auto kind : kinds) std::printf("%10s", transport_name(kind));
    std::printf("\n");
    for (const std::size_t iodepth : iodepths) {
      std::printf("%-8zu", iodepth);
      std::vector<double> row;
      for (const auto kind : kinds) {
        const LatencyStats stats = run_fio(kind, iodepth);
        row.push_back((which[1] == '5' ? stats.p50() : stats.p99()) / 1e3);
        std::printf("%10.1f", row.back());
      }
      std::printf("\n");
      std::printf("  shape: SMT-sw vs kTLS-sw %+5.1f%%   SMT-hw vs kTLS-hw %+5.1f%%\n",
                  100.0 * (row[4] - row[1]) / row[1],
                  100.0 * (row[5] - row[2]) / row[2]);
    }
  }
  return 0;
}
