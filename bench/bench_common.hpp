// Shared measurement harness for the paper-reproduction benches.
//
// Each bench binary prints the rows/series of one paper table or figure.
// All latency/throughput numbers are VIRTUAL-time measurements from the
// deterministic simulator (DESIGN.md "Virtual time"); handshake benches
// additionally use real wall-clock for crypto operations.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/rpc.hpp"

namespace smt::bench {

/// Real monotonic nanosecond clock for the TLS engine's injected
/// tls::OpClockFn (ClientConfig/ServerConfig::op_clock). The engine itself
/// never reads host time — wall clock is banned inside src/ by
/// tools/lint/determinism_lint.py — so handshake benches that want real
/// Table 2 / Figure 12 crypto durations inject this at the boundary.
inline std::uint64_t wall_clock_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

/// --- smoke mode ----------------------------------------------------------
///
/// Every bench binary accepts `--smoke` (or BENCH_SMOKE=1 in the
/// environment): CI runs each bench with a tiny iteration budget so the
/// binaries are exercised end-to-end on every change and can never silently
/// rot. Benches call `init(argc, argv)` first and then shrink their sweep
/// lists / iteration counts when `smoke()` is true.

inline bool& smoke_flag() {
  static bool flag = false;
  return flag;
}
inline bool smoke() { return smoke_flag(); }

/// --- one-line JSON results ----------------------------------------------
///
/// When BENCH_JSON_DIR is set (CI does this for the smoke runs), every
/// bench writes `<dir>/<bench-name>.json` at exit: one line with the bench
/// name, mode, and whatever headline metrics the bench recorded via
/// json_metric(). CI collects the files into a workflow artifact so runs
/// are comparable across commits without parsing stdout tables.

// Intentionally leaked: the atexit writer below must be able to read these
// after every normally-destructed static is gone, regardless of the order
// in which translation units first touched them.
inline std::string& bench_name() {
  static auto* name = new std::string("bench");
  return *name;
}

inline std::vector<std::pair<std::string, double>>& json_metrics() {
  static auto* metrics = new std::vector<std::pair<std::string, double>>();
  return *metrics;
}

/// Records one headline metric for the JSON result line.
inline void json_metric(const std::string& key, double value) {
  json_metrics().emplace_back(key, value);
}

inline void write_json_result() {
  // Single-threaded atexit context; getenv without setenv is race-free.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* dir = std::getenv("BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + bench_name() + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\"bench\":\"%s\",\"smoke\":%s", bench_name().c_str(),
               smoke() ? "true" : "false");
  for (const auto& [key, value] : json_metrics()) {
    std::fprintf(out, ",\"%s\":%.6g", key.c_str(), value);
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
}

inline void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke_flag() = true;
  }
  // Single-threaded startup; getenv without setenv is race-free.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("BENCH_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') smoke_flag() = true;
  if (argc > 0 && argv[0] != nullptr) {
    std::string name(argv[0]);
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name.erase(0, slash + 1);
    bench_name() = std::move(name);
  }
  // The result line is written even when the bench exits non-zero — a
  // failing smoke run still leaves a record in the artifact.
  // Registered once from main() before any thread exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  std::atexit(write_json_result);
  if (smoke()) std::printf("[smoke mode: tiny iteration budget]\n");
}

/// Keeps the first element of each sweep list in smoke mode.
template <typename T>
inline std::vector<T> sweep(const std::vector<T>& full) {
  if (smoke() && !full.empty()) return std::vector<T>(1, full.front());
  return full;
}

/// Scales an iteration count down in smoke mode (but never below `floor`,
/// and never above the full budget).
inline std::size_t iters(std::size_t full, std::size_t floor = 100) {
  if (!smoke()) return full;
  return std::min(full, std::max(floor, full / 50));
}

using apps::RpcChannel;
using apps::RpcFabric;
using apps::RpcFabricConfig;
using apps::TransportKind;
using apps::transport_name;

/// Two-host back-to-back testbed (host 0 = ip 1, host 1 = ip 2, default
/// 100 Gb/s link) for benches that drive raw endpoints instead of RpcFabric.
inline std::unique_ptr<stack::Topology> two_host_topology(
    sim::EventLoop& loop, const stack::HostConfig& hc = {}) {
  auto built = stack::TopologyBuilder().host_config(hc).build(loop);
  if (!built.ok()) {
    std::fprintf(stderr, "topology error: %s\n", built.error().message.c_str());
    std::abort();
  }
  return std::move(built).take();
}

/// Unloaded RTT (Figure 6 / 10 / 11 methodology, §5.1): a single
/// request/response at a time, no concurrency, averaged over `iters`.
inline double measure_unloaded_rtt_us(RpcFabricConfig config,
                                      std::size_t rpc_bytes, int warmup = 5,
                                      int iters = 40) {
  if (smoke()) {
    warmup = 1;
    iters = std::min(iters, 5);
  }
  RpcFabric fabric(config);
  auto channel = fabric.make_channel(0);
  double total_us = 0;
  int measured = 0;
  int remaining = warmup + iters;

  std::function<void()> issue = [&] {
    if (remaining == 0) return;
    --remaining;
    channel->call(Bytes(rpc_bytes, 0x5a), std::uint32_t(rpc_bytes),
                  [&](SimDuration rtt, Bytes) {
                    if (remaining < iters) {  // past warmup
                      total_us += to_usec(rtt);
                      ++measured;
                    }
                    issue();
                  });
  };
  issue();
  fabric.loop().run();
  return total_us / double(measured);
}

/// Concurrent closed-loop throughput (Figure 7 methodology, §5.2):
/// `concurrency` outstanding RPCs across 12 client app threads; reports
/// completed RPCs per second of virtual time over the measured phase.
inline double measure_throughput_rps(
    RpcFabricConfig config, std::size_t rpc_bytes, std::size_t concurrency,
    std::size_t total_ops,
    const std::function<void(RpcFabric&)>& inspect = nullptr) {
  total_ops = iters(total_ops, std::max<std::size_t>(200, 4 * concurrency));
  RpcFabric fabric(config);
  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < concurrency; ++i) {
    channels.push_back(fabric.make_channel(i));  // app core = i % 12
  }

  const std::size_t warmup_ops = total_ops / 10;
  std::size_t issued = 0, completed = 0;
  SimTime measure_start = 0;
  SimTime measure_end = 0;

  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    if (issued >= total_ops) return;
    ++issued;
    channels[slot]->call(Bytes(rpc_bytes, 0x5a), std::uint32_t(rpc_bytes),
                         [&, slot](SimDuration, Bytes) {
                           ++completed;
                           if (completed == warmup_ops) {
                             measure_start = fabric.loop().now();
                           }
                           if (completed == total_ops) {
                             // Stop the clock at the LAST completion: the
                             // loop afterwards only drains protocol timers
                             // (RTO backstops, state GC), which must not
                             // dilute the measured window.
                             measure_end = fabric.loop().now();
                           }
                           issue(slot);
                         });
  };
  for (std::size_t i = 0; i < concurrency; ++i) issue(i);
  fabric.loop().run();

  if (inspect) inspect(fabric);
  const double seconds = to_sec(measure_end - measure_start);
  return double(completed - warmup_ops) / seconds;
}

/// Pretty-prints a series table: rows = x values, columns = systems.
inline void print_table(const char* title, const char* x_label,
                        const std::vector<std::size_t>& xs,
                        const std::vector<const char*>& systems,
                        const std::vector<std::vector<double>>& values,
                        const char* value_format = "%10.1f") {
  std::printf("\n== %s ==\n%-12s", title, x_label);
  for (const char* system : systems) std::printf("%10s", system);
  std::printf("\n");
  for (std::size_t row = 0; row < xs.size(); ++row) {
    std::printf("%-12zu", xs[row]);
    for (std::size_t col = 0; col < systems.size(); ++col) {
      std::printf(value_format, values[row][col]);
    }
    std::printf("\n");
  }
}

}  // namespace smt::bench
