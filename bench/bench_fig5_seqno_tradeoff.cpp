// Figure 5: bit-allocation trade-off in the composite 64-bit record
// sequence number (§4.4.1): more bits for the intra-message record index
// mean larger messages but fewer unique message IDs per session.
#include <cstdio>

#include "bench_common.hpp"
#include "smt/seqno.hpp"

using namespace smt::proto;

namespace {

const char* human(double value, char* buffer, std::size_t n) {
  const char* suffix[] = {"", " K", " M", " G", " T", " P", " E"};
  int index = 0;
  while (value >= 1000.0 && index < 6) {
    value /= 1000.0;
    ++index;
  }
  std::snprintf(buffer, n, "%.1f%s", value, suffix[index]);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke changes nothing (the analytic sweep is already tiny) but
  // init() still records the JSON result line for the CI artifact.
  smt::bench::init(argc, argv);
  std::printf("== Figure 5: composite seqno bit-allocation trade-off ==\n");
  std::printf("%-12s %-12s %-16s %-18s %-18s\n", "index bits", "ID bits",
              "max messages", "max msg @1.5KB rec", "max msg @16KB rec");
  char b1[32], b2[32], b3[32];
  for (unsigned record_bits = 8; record_bits <= 17; ++record_bits) {
    const SeqnoLayout layout(64 - record_bits);
    std::printf("%-12u %-12u %-16s %-16sB %-16sB\n", record_bits,
                64 - record_bits,
                human(double(layout.max_messages()), b1, sizeof(b1)),
                human(double(layout.max_message_bytes(1500)), b2, sizeof(b2)),
                human(double(layout.max_message_bytes(16384)), b3, sizeof(b3)));
  }

  const SeqnoLayout paper;  // 48/16
  char b4[32], b5[32];
  std::printf("\npaper's choice (48-bit IDs, 16-bit index): %s messages, "
              "%sB max @1.5K records, %sB max @16K records\n",
              human(double(paper.max_messages()), b1, sizeof(b1)),
              human(double(paper.max_message_bytes(1500)), b4, sizeof(b4)),
              human(double(paper.max_message_bytes(16384)), b5, sizeof(b5)));
  return 0;
}
