// Ablations for SMT design choices (DESIGN.md "ablation benches"):
//
//   1. TLS record size — the paper aligns <=16 KB records to TSO segments
//      (§4.3). Smaller records mean more per-record work (framing, tags,
//      offload metadata) per message; this sweep quantifies that choice.
//   2. Length-concealment padding (§6.1) — padding every RPC to a bucket
//      hides sizes from traffic analysis; this measures the RTT cost.
//   3. Composite-seqno index width (§4.4.1) — 16 bits of record index is
//      free at runtime; narrower splits only cap message size. Verified
//      here by running traffic under a narrow layout.
#include "bench_common.hpp"
#include "crypto/drbg.hpp"
#include "smt/endpoint.hpp"

using namespace smt;
using namespace smt::bench;

namespace {

/// Direct two-host SMT testbed (bypasses RpcFabric to vary SmtConfig).
double smt_echo_rtt_us(proto::SmtConfig config, std::size_t size,
                       std::size_t pad_to = 0) {
  sim::EventLoop loop;
  const auto topology = two_host_topology(loop);
  stack::Host& client_host = topology->host(0);
  stack::Host& server_host = topology->host(1);

  proto::SmtEndpoint client(client_host, 1000, config);
  proto::SmtEndpoint server(server_host, 80, config);
  tls::TrafficKeys tx{Bytes(16, 0x11), Bytes(12, 0x12)};
  tls::TrafficKeys rx{Bytes(16, 0x13), Bytes(12, 0x14)};
  (void)client.register_session({2, 80}, tls::CipherSuite::aes_128_gcm_sha256,
                                tx, rx);
  (void)server.register_session({1, 1000},
                                tls::CipherSuite::aes_128_gcm_sha256, rx, tx);

  server.set_on_message([&](proto::SmtEndpoint::MessageMeta meta, Bytes data) {
    (void)server.send_message({meta.peer.ip, 1000}, std::move(data), nullptr,
                              pad_to);
  });

  double total = 0;
  int measured = 0;
  int remaining = bench::smoke() ? 6 : 25;
  SimTime sent_at = 0;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    sent_at = loop.now();
    (void)client.send_message({2, 80}, Bytes(size, 0x42),
                              &client_host.app_core(0), pad_to);
  };
  client.set_on_message([&](proto::SmtEndpoint::MessageMeta, Bytes) {
    if (remaining < 20) {  // skip warmup
      total += to_usec(loop.now() - sent_at);
      ++measured;
    }
    issue();
  });
  issue();
  loop.run();
  return total / measured;
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  std::printf("== Ablation 1: TLS record payload size (64 KB messages) ==\n");
  std::printf("%-14s %10s %12s\n", "record bytes", "RTT [us]", "records/msg");
  for (const std::size_t record : {1400u, 4000u, 8000u, 16000u}) {
    proto::SmtConfig config;
    config.max_record_payload = record;
    const double rtt = smt_echo_rtt_us(config, 65536);
    std::printf("%-14zu %10.1f %12zu\n", record, rtt,
                (65536 + record - 1) / record);
  }
  std::printf("(larger records amortise per-record framing/tag/metadata "
              "costs — the §4.3 alignment choice)\n");

  std::printf("\n== Ablation 2: length-concealment padding (§6.1) ==\n");
  std::printf("%-18s %10s\n", "true size -> pad", "RTT [us]");
  for (const std::size_t size : {100u, 700u, 1300u}) {
    proto::SmtConfig config;
    const double bare = smt_echo_rtt_us(config, size, 0);
    const double padded = smt_echo_rtt_us(config, size, 1500);
    std::printf("%6zu -> none     %10.2f\n", size, bare);
    std::printf("%6zu -> 1500 B   %10.2f  (+%.1f%%)\n", size, padded,
                100.0 * (padded - bare) / bare);
  }

  std::printf("\n== Ablation 3: narrow message-ID split still functions ==\n");
  for (const unsigned id_bits : {56u, 48u, 40u}) {
    proto::SmtConfig config;
    config.layout = proto::SeqnoLayout(id_bits);
    const double rtt = smt_echo_rtt_us(config, 30000);
    std::printf("  %u-bit IDs / %u-bit index: 30 KB RTT %.1f us "
                "(max msg %.1f MB @16K records)\n",
                id_bits, 64 - id_bits, rtt,
                double(config.layout.max_message_bytes(16384)) / 1e6);
  }
  std::printf("(the split changes capacity limits, not datapath cost — the "
              "low-bits index keeps the HW counter usable at any width)\n");
  return 0;
}
