// N-to-1 incast over a Clos fabric (the topology-layer headline scenario):
// many clients spread across racks fire closed-loop RPCs at one server,
// so every request crosses the oversubscribed fabric and converges on the
// server's ToR port. Compares the paper's transports (§5) on goodput into
// the server, RPC tail latency, and switch-level trims/drops.
//
// Flags:
//   --smoke            tiny 2-rack fabric (CI)
//   --shards N         run on a ShardedEngine with N shards (default 1;
//                      results are byte-identical run-to-run per N)
//   --scenario FILE    load the topology/workload from a scenario file
//                      (tools/scenarios/*.toml) instead of the defaults;
//                      runs only the scenario's workload.transport
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace smt::bench {
namespace {

stack::ScenarioConfig default_scenario() {
  stack::ScenarioConfig scenario;
  if (smoke()) {
    scenario.topology.racks = 2;
    scenario.topology.hosts_per_rack = 4;
    scenario.topology.spines = 2;
    scenario.workload.clients = 4;
    scenario.workload.ops_per_client = 8;
  } else {
    scenario.topology.racks = 8;
    scenario.topology.hosts_per_rack = 16;
    scenario.topology.spines = 4;
    scenario.topology.aggs_per_pod = 2;
    scenario.topology.racks_per_pod = 4;
    scenario.topology.oversubscription = 4.0;
    scenario.workload.clients = 32;
    scenario.workload.ops_per_client = 16;
  }
  // Modest hosts: the bench scales by fan-in, not by per-host parallelism.
  scenario.host.app_cores = 2;
  scenario.host.softirq_cores = 2;
  scenario.workload.request_bytes = 16 * 1024;  // the congesting direction
  scenario.workload.response_bytes = 64;
  scenario.workload.concurrency = 2;
  return scenario;
}

/// Client hosts round-robined across racks (offset-major), so fan-in
/// always crosses the fabric instead of clustering under the server's ToR.
std::vector<std::size_t> pick_clients(const stack::TopologySpec& topology,
                                      std::size_t server_index,
                                      std::size_t want) {
  std::vector<std::size_t> clients;
  const std::size_t hpr = topology.hosts_per_rack;
  if (want == 0) want = topology.host_count() - 1;
  for (std::size_t offset = 0; offset < hpr && clients.size() < want; ++offset) {
    for (std::size_t rack = 0; rack < topology.racks && clients.size() < want;
         ++rack) {
      const std::size_t host = rack * hpr + offset;
      if (host != server_index) clients.push_back(host);
    }
  }
  return clients;
}

struct IncastResult {
  double goodput_gbps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double drops = 0;  // switch trims + drops
  std::size_t completed = 0;
};

IncastResult run_incast(const stack::ScenarioConfig& scenario,
                        TransportKind kind, std::size_t shards) {
  sim::ShardedEngine engine(shards, usec(1));
  auto built = stack::TopologyBuilder(scenario).build(engine);
  if (!built.ok()) {
    std::fprintf(stderr, "incast topology: %s\n",
                 built.error().message.c_str());
    std::abort();
  }
  auto topology = std::move(built).take();

  const std::size_t server_index = 0;
  const std::vector<std::size_t> clients =
      pick_clients(scenario.topology, server_index, scenario.workload.clients);

  RpcFabricConfig config;
  config.kind = kind;
  RpcFabric fabric(config, *topology, server_index, clients);

  const std::size_t concurrency = scenario.workload.concurrency;
  const std::size_t ops_per_client = scenario.workload.ops_per_client;
  const std::size_t request_bytes = scenario.workload.request_bytes;
  const std::size_t response_bytes = scenario.workload.response_bytes;

  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    for (std::size_t c = 0; c < concurrency; ++c) {
      channels.push_back(fabric.make_channel(i, c));
    }
  }

  // Completion callbacks run on each client's SHARD THREAD: accumulate
  // strictly per client (one shard runs its clients sequentially) and
  // merge only after engine.run() joins the shards.
  struct PerClient {
    std::size_t issued = 0;
    std::vector<double> rtts_us;
    SimTime last_completion = 0;
  };
  std::vector<PerClient> per_client(clients.size());
  std::function<void(std::size_t)> issue = [&](std::size_t slot) {
    const std::size_t client = slot / concurrency;
    PerClient& mine = per_client[client];
    if (mine.issued >= ops_per_client) return;
    ++mine.issued;
    channels[slot]->call(
        Bytes(request_bytes, 0x5a), std::uint32_t(response_bytes),
        [&, slot, client](SimDuration rtt, Bytes) {
          PerClient& me = per_client[client];
          me.rtts_us.push_back(to_usec(rtt));
          me.last_completion = fabric.client_host(client).loop().now();
          issue(slot);
        });
  };
  for (std::size_t slot = 0; slot < channels.size(); ++slot) issue(slot);
  engine.run();

  IncastResult result;
  std::vector<double> rtts_us;
  rtts_us.reserve(clients.size() * ops_per_client);
  SimTime last_completion = 0;
  for (const PerClient& c : per_client) {
    result.completed += c.rtts_us.size();
    rtts_us.insert(rtts_us.end(), c.rtts_us.begin(), c.rtts_us.end());
    last_completion = std::max(last_completion, c.last_completion);
  }
  std::sort(rtts_us.begin(), rtts_us.end());
  if (!rtts_us.empty()) {
    result.p50_us = rtts_us[rtts_us.size() / 2];
    result.p99_us = rtts_us[std::size_t(double(rtts_us.size() - 1) * 0.99)];
  }
  // Goodput INTO the server: request payload delivered over the run.
  const double bits = double(result.completed) * double(request_bytes) * 8.0;
  result.goodput_gbps = last_completion > 0 ? bits / double(last_completion) : 0;
  const sim::Switch::Stats totals = topology->switch_totals();
  result.drops = double(totals.trimmed + totals.dropped);
  return result;
}

}  // namespace
}  // namespace smt::bench

int main(int argc, char** argv) {
  using namespace smt;
  using namespace smt::bench;
  init(argc, argv);

  std::size_t shards = 1;
  std::optional<std::string> scenario_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::size_t(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario_path = argv[++i];
    }
  }
  if (shards == 0) shards = 1;

  stack::ScenarioConfig scenario;
  std::vector<TransportKind> kinds;
  if (scenario_path) {
    auto loaded = stack::ScenarioConfig::load_file(*scenario_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
      return 1;
    }
    scenario = std::move(loaded).take();
    auto kind = apps::parse_transport(scenario.workload.transport);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.error().message.c_str());
      return 1;
    }
    kinds.push_back(kind.value());
  } else {
    scenario = default_scenario();
    kinds = {TransportKind::tcp, TransportKind::ktls_hw, TransportKind::homa,
             TransportKind::smt_hw};
  }

  const std::size_t fan_in = scenario.workload.clients != 0
                                 ? scenario.workload.clients
                                 : scenario.topology.host_count() - 1;
  std::printf(
      "Incast: %zu racks x %zu hosts, %zu spines, %zu clients -> 1 server, "
      "%zu B requests, %zu shard(s)\n",
      scenario.topology.racks, scenario.topology.hosts_per_rack,
      scenario.topology.spines, fan_in, scenario.workload.request_bytes,
      shards);
  std::printf("%-10s %14s %10s %10s %10s\n", "transport", "goodput_gbps",
              "p50_us", "p99_us", "drops");

  for (const TransportKind kind : kinds) {
    const IncastResult r = run_incast(scenario, kind, shards);
    std::printf("%-10s %14.2f %10.1f %10.1f %10.0f\n",
                apps::transport_key(kind), r.goodput_gbps, r.p50_us, r.p99_us,
                r.drops);
    const std::string key = apps::transport_key(kind);
    json_metric("incast_goodput_gbps_" + key, r.goodput_gbps);
    json_metric("incast_p99_us_" + key, r.p99_us);
    json_metric("incast_drops_" + key, r.drops);
    if (kind == TransportKind::smt_hw || kinds.size() == 1) {
      // Headline keys (the smt_hw row, or the scenario's only transport).
      json_metric("incast_goodput_gbps", r.goodput_gbps);
      json_metric("incast_p99_us", r.p99_us);
      json_metric("incast_drops", r.drops);
    }
  }
  return 0;
}
