// §5.2 "CPU usage": resource usage at a FIXED request rate, 1 KB RPCs
// (the paper pins all systems to 1.2 M req/s; we use a rate every system
// here sustains). Paper: SMT-sw uses 3.5 % less CPU than kTLS-sw at the
// client and 10.5 % at the server; SMT-hw 2 % / 8 % less than kTLS-hw;
// offload saves SMT ~4 % at the server, ~1.5 % at the client.
#include "bench_common.hpp"

using namespace smt;
using namespace smt::bench;

namespace {

struct CpuResult {
  double client_pct;
  double server_pct;
  double client_irq_pct;  // IRQ-class slice: NIC interrupts + doorbells
  double server_irq_pct;
};

CpuResult run_fixed_rate(TransportKind kind, double rate_rps) {
  RpcFabricConfig config;
  config.kind = kind;
  RpcFabric fabric(config);

  constexpr std::size_t kChannels = 64;
  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (std::size_t i = 0; i < kChannels; ++i) {
    channels.push_back(fabric.make_channel(i));
  }

  // Open loop: one request every 1/rate, round-robin over channels.
  const SimDuration interval = SimDuration(1e9 / rate_rps);
  const SimDuration run_for = smoke() ? msec(2) : msec(30);
  std::size_t issued = 0;
  std::function<void()> tick = [&] {
    channels[issued % kChannels]->call(Bytes(1024, 0x5a), 1024,
                                       [](SimDuration, Bytes) {});
    ++issued;
    if (SimTime(issued) * interval < run_for) {
      fabric.loop().schedule(interval, tick);
    }
  };
  tick();
  fabric.loop().run_until(run_for);

  // CPU usage: busy fraction across all cores over the run window.
  const double total_core_time =
      double(run_for) * double(fabric.config().client_app_cores +
                               fabric.config().softirq_cores);
  CpuResult result;
  result.client_pct = 100.0 * double(fabric.client_busy_ns()) / total_core_time;
  result.server_pct = 100.0 * double(fabric.server_busy_ns()) / total_core_time;
  // The interrupt column: CPU the NIC datapath itself eats (RX interrupt
  // servicing on the IRQ-affinity softirq cores, doorbell MMIO on posting
  // cores) — work that used to be invisible event-loop delay and now
  // contends with protocol processing (§5.2's softirq-thread ceiling).
  result.client_irq_pct =
      100.0 * double(fabric.client_irq_ns()) / total_core_time;
  result.server_irq_pct =
      100.0 * double(fabric.server_irq_ns()) / total_core_time;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  init(argc, argv);
  constexpr double kRate = 0.9e6;  // req/s — sustained by every system
  std::printf("== §5.2 CPU usage at a fixed %.1f M req/s, 1 KB RPCs ==\n",
              kRate / 1e6);
  std::printf("%-10s %14s %14s %15s %15s\n", "system", "client CPU [%]",
              "server CPU [%]", "client IRQ [%]", "server IRQ [%]");

  std::map<TransportKind, CpuResult> results;
  for (const TransportKind kind :
       {TransportKind::ktls_sw, TransportKind::ktls_hw, TransportKind::smt_sw,
        TransportKind::smt_hw}) {
    results[kind] = run_fixed_rate(kind, kRate);
    std::printf("%-10s %14.1f %14.1f %15.2f %15.2f\n", transport_name(kind),
                results[kind].client_pct, results[kind].server_pct,
                results[kind].client_irq_pct, results[kind].server_irq_pct);
    json_metric(std::string(transport_name(kind)) + "_server_irq_pct",
                results[kind].server_irq_pct);
  }

  const auto rel = [](double smt, double ktls) {
    return 100.0 * (ktls - smt) / ktls;
  };
  std::printf("\nshape checks (CPU saved by SMT; paper: sw 3.5%%/10.5%%, "
              "hw 2%%/8%% client/server):\n");
  std::printf("  SMT-sw vs kTLS-sw: client %.1f%%  server %.1f%%\n",
              rel(results[TransportKind::smt_sw].client_pct,
                  results[TransportKind::ktls_sw].client_pct),
              rel(results[TransportKind::smt_sw].server_pct,
                  results[TransportKind::ktls_sw].server_pct));
  std::printf("  SMT-hw vs kTLS-hw: client %.1f%%  server %.1f%%\n",
              rel(results[TransportKind::smt_hw].client_pct,
                  results[TransportKind::ktls_hw].client_pct),
              rel(results[TransportKind::smt_hw].server_pct,
                  results[TransportKind::ktls_hw].server_pct));
  std::printf("  SMT-hw vs SMT-sw:  client %.1f%%  server %.1f%%\n",
              rel(results[TransportKind::smt_hw].client_pct,
                  results[TransportKind::smt_sw].client_pct),
              rel(results[TransportKind::smt_hw].server_pct,
                  results[TransportKind::smt_sw].server_pct));
  return 0;
}
