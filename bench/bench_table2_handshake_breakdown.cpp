// Table 2: server- and client-side TLS 1.3 handshake operation latencies.
//
// Paper methodology: timestamping inside picotls around each handshake
// operation. Here: wall-clock timing inside our from-scratch handshake
// engine, averaged over full handshakes. ECDSA (secp256r1) only — this
// library does not implement RSA (substitution recorded in DESIGN.md), so
// the paper's "+2048-bit RSA" column is absent. Absolute numbers are
// larger than the paper's (our portable bignum has no hardware ECC
// acceleration); the OPERATION RANKING is the reproducible shape: ECDH
// exchange and certificate verification dominate, CHLO processing and
// Finished handling are cheap.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "crypto/drbg.hpp"
#include "tls/engine.hpp"

using namespace smt;
using namespace smt::tls;

int main(int argc, char** argv) {
  bench::init(argc, argv);
  crypto::HmacDrbg rng(to_bytes(std::string_view("table2-bench")));
  auto ca = CertificateAuthority::create("dc-root", rng);
  const auto server_key = crypto::ecdsa_keypair_from_seed(rng.generate(32));
  CertChain chain;
  chain.certs.push_back(ca.issue(
      "server", crypto::encode_point(server_key.public_key), 0, 1u << 30));

  std::map<std::string, double> sums;
  std::map<std::string, int> counts;
  const int kIterations = bench::smoke() ? 2 : 20;

  for (int i = 0; i < kIterations; ++i) {
    ClientConfig cc;
    cc.server_name = "server";
    cc.trusted_ca = ca.public_key();
    cc.now = 100;
    cc.op_clock = bench::wall_clock_ns;  // real Table 2 durations
    ServerConfig sc;
    sc.chain = chain;
    sc.sig_key = server_key;
    sc.trusted_ca = ca.public_key();
    sc.now = 100;
    sc.op_clock = bench::wall_clock_ns;

    ClientHandshake client(cc, rng);
    ServerHandshake server(sc, rng);
    auto f1 = client.start();
    auto sf = server.on_client_flight(f1.value());
    auto f2 = client.on_server_flight(sf.value());
    const Status done = server.on_client_finished(f2.value());
    if (!done.ok()) {
      std::printf("handshake failed: %s\n", done.message().c_str());
      return 1;
    }
    for (const auto& [label, us] : server.timings().ops) {
      sums[label] += us;
      ++counts[label];
    }
    for (const auto& [label, us] : client.timings().ops) {
      sums[label] += us;
      ++counts[label];
    }
  }

  std::printf("== Table 2: TLS 1.3 handshake overheads (ECDSA secp256r1, "
              "avg of %d handshakes) ==\n", kIterations);
  std::printf("%-28s %12s\n", "operation", "overhead [us]");
  // Print in the paper's order.
  const char* order[] = {
      "S1 Process CHLO",     "S2.1 Key Gen",        "S2.2 ECDH Exchange",
      "S2.3 SHLO Gen",       "S2.4 EE & Cert Encode", "S2.5 CertVerify Gen",
      "S2.6 Secret Derive",  "S3 Process Finished", "C1.1 Key Gen",
      "C1.2 Others Gen",     "C2.1 Process SHLO",   "C2.2 ECDH Exchange",
      "C2.3 Secret Derive",  "C3.1 Decode Cert",    "C3.2 Verify Cert",
      "C4.1 Build Sign Data", "C4.2 Verify CertVerify", "C5 Process Finished"};
  for (const char* label : order) {
    const auto it = sums.find(label);
    if (it == sums.end()) continue;
    std::printf("%-28s %12.1f\n", label, it->second / counts[label]);
  }

  // Shape assertions the paper's Table 2 supports (§4.5.1 motivations).
  const auto avg = [&](const char* label) {
    return sums.count(label) ? sums[label] / counts[label] : 0.0;
  };
  std::printf("\nshape checks:\n");
  std::printf("  ECDH dominates cheap ops:         %s\n",
              avg("S2.2 ECDH Exchange") > 10 * avg("S1 Process CHLO")
                  ? "yes" : "NO");
  std::printf("  Verify Cert is a top client cost: %s\n",
              avg("C3.2 Verify Cert") > avg("C2.3 Secret Derive") ? "yes" : "NO");
  std::printf("  Key Gen removable by pre-generation (S2.1/C1.1 > 0): %s\n",
              avg("S2.1 Key Gen") > 0 && avg("C1.1 Key Gen") > 0 ? "yes" : "NO");
  return 0;
}
