// Secure key-value store demo (the paper's Redis scenario, §5.3).
//
// Runs a mini-Redis server behind the RPC fabric and drives a short YCSB-B
// workload over four transport stacks, printing achieved throughput. The
// single-threaded server model makes the encryption-cost differences
// directly visible, as in Figure 8.
//
//   $ ./secure_kv_demo
#include <cstdio>

#include "apps/miniredis.hpp"
#include "apps/ycsb.hpp"

using namespace smt;
using namespace smt::apps;

namespace {

double run_kv(TransportKind kind, std::size_t value_size) {
  RpcFabricConfig config;
  config.kind = kind;
  config.single_threaded_server = true;
  RpcFabric fabric(config);

  auto redis = std::make_shared<MiniRedis>();
  fabric.set_handler([redis](ByteView request) { return redis->handle(request); });

  YcsbConfig ycsb_config;
  ycsb_config.workload = YcsbWorkload::b;
  ycsb_config.record_count = 500;
  ycsb_config.value_size = value_size;
  YcsbGenerator workload(ycsb_config);

  // Preload the table directly (load phase is not measured).
  for (std::uint64_t i = 0; i < workload.record_count(); ++i) {
    redis->apply(workload.load_request(i));
  }

  // 8 client connections, closed-loop.
  constexpr int kClients = 8;
  constexpr int kOpsTotal = 2000;
  std::vector<std::unique_ptr<RpcChannel>> channels;
  for (int i = 0; i < kClients; ++i) channels.push_back(fabric.make_channel(std::size_t(i)));

  int issued = 0, completed = 0;
  std::function<void(int)> issue = [&](int slot) {
    if (issued >= kOpsTotal) return;
    ++issued;
    channels[std::size_t(slot)]->call(workload.next().encode(), 0,
                                      [&, slot](SimDuration, Bytes) {
                                        ++completed;
                                        issue(slot);
                                      });
  };
  for (int i = 0; i < kClients; ++i) issue(i);
  fabric.loop().run();

  const double seconds = to_sec(fabric.loop().now());
  return double(completed) / seconds;
}

}  // namespace

int main() {
  std::puts("mini-Redis, YCSB-B (95% read), 1 KB values, single-threaded server");
  std::puts("transport   throughput [K ops/s]");
  for (const TransportKind kind :
       {TransportKind::tcp, TransportKind::ktls_sw, TransportKind::ktls_hw,
        TransportKind::homa, TransportKind::smt_sw, TransportKind::smt_hw}) {
    const double ops = run_kv(kind, 1024);
    std::printf("%-10s  %8.1f\n", transport_name(kind), ops / 1e3);
  }
  return 0;
}
