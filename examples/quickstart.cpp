// Quickstart: encrypted RPC over SMT in ~60 lines of user code.
//
// Sets up the simulated testbed (two hosts, 100 Gb/s back-to-back link),
// runs a REAL TLS 1.3 handshake, registers the negotiated keys on the SMT
// sockets (the setsockopt analogue, paper §4.2), and exchanges an
// encrypted request/response pair.
//
//   $ ./quickstart
#include <cstdio>

#include "crypto/drbg.hpp"
#include "smt/endpoint.hpp"
#include "stack/topology.hpp"
#include "tls/engine.hpp"

using namespace smt;

int main() {
  // --- testbed: two hosts, 100 Gb/s back-to-back (builder default) -------
  sim::EventLoop loop;
  auto built = stack::TopologyBuilder().build(loop);
  if (!built.ok()) {
    std::printf("topology error: %s\n", built.error().message.c_str());
    return 1;
  }
  auto topology = std::move(built).take();
  stack::Host& client_host = topology->host(0);  // ip 1
  stack::Host& server_host = topology->host(1);  // ip 2

  // --- PKI + TLS 1.3 handshake (the application's job, §4.2) -------------
  crypto::HmacDrbg rng(to_bytes(std::string_view("quickstart")));
  auto ca = tls::CertificateAuthority::create("dc-root", rng);
  const auto server_key = crypto::ecdsa_keypair_from_seed(rng.generate(32));
  tls::CertChain chain;
  chain.certs.push_back(ca.issue(
      "server.internal", crypto::encode_point(server_key.public_key), 0, 1u << 30));

  tls::ClientConfig cc;
  cc.server_name = "server.internal";
  cc.trusted_ca = ca.public_key();
  cc.now = 1000;
  tls::ServerConfig sc;
  sc.chain = chain;
  sc.sig_key = server_key;
  sc.trusted_ca = ca.public_key();
  sc.now = 1000;

  tls::ClientHandshake client_hs(cc, rng);
  tls::ServerHandshake server_hs(sc, rng);
  auto flight1 = client_hs.start();
  auto server_flight = server_hs.on_client_flight(flight1.value());
  auto flight2 = client_hs.on_server_flight(server_flight.value());
  if (!server_hs.on_client_finished(flight2.value()).ok()) {
    std::puts("handshake failed");
    return 1;
  }
  std::printf("TLS 1.3 handshake complete (%s, forward secret: %s)\n",
              tls::suite_name(client_hs.secrets().suite),
              client_hs.secrets().forward_secret ? "yes" : "no");

  // --- SMT sockets + key registration ------------------------------------
  proto::SmtConfig smt_config;  // software crypto; set hw_offload for NIC TLS
  proto::SmtEndpoint client(client_host, 1000, smt_config);
  proto::SmtEndpoint server(server_host, 80, smt_config);

  const auto& cs = client_hs.secrets();
  const auto& ss = server_hs.secrets();
  client.register_session({2, 80}, cs.suite, cs.client_keys, cs.server_keys);
  server.register_session({1, 1000}, ss.suite, ss.server_keys, ss.client_keys);

  // --- server: echo handler ----------------------------------------------
  server.set_on_message([&](proto::SmtEndpoint::MessageMeta meta, Bytes data) {
    std::printf("server: message %llu from %u:%u — %zu plaintext bytes\n",
                (unsigned long long)meta.msg_id, meta.peer.ip, meta.peer.port,
                data.size());
    server.send_message({meta.peer.ip, 1000}, std::move(data));
  });

  // --- client: send one encrypted RPC ------------------------------------
  client.set_on_message([&](proto::SmtEndpoint::MessageMeta, Bytes data) {
    std::printf("client: response received at t=%.2f us: \"%.*s\"\n",
                to_usec(loop.now()), int(data.size()), data.data());
  });
  client.send_message({2, 80}, to_bytes(std::string_view("hello, SMT!")));

  loop.run();

  std::printf("done: %llu message(s) delivered, %llu replay(s) dropped\n",
              (unsigned long long)server.stats().messages_delivered,
              (unsigned long long)server.stats().replays_dropped);
  return 0;
}
