// 0-RTT key exchange demo (paper §4.5.2-4.5.3).
//
// Walks through the SMT-ticket flow:
//   1. the internal CA issues an SMT-ticket for the server's long-term
//      ECDH share and publishes it in the directory ("internal DNS");
//   2. a client looks the ticket up, verifies it against the pre-installed
//      CA key, and derives an SMT-key BEFORE any packet is sent;
//   3. the first flight already carries encrypted application data;
//   4. optionally the server upgrades the session to forward secrecy;
//   5. a replayed first flight is refused 0-RTT admission.
//
//   $ ./zero_rtt_demo
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "crypto/drbg.hpp"
#include "tls/engine.hpp"
#include "tls/record.hpp"

using namespace smt;
using namespace smt::tls;

namespace {

// The engine never reads host time (src/ bans wall clocks — see
// docs/determinism.md); the demo injects a real clock so the printed
// crypto-work number is a real duration.
std::uint64_t wall_clock_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

}  // namespace

int main() {
  crypto::HmacDrbg rng(to_bytes(std::string_view("zero-rtt-demo")));

  // --- 1. PKI + ticket issuance ------------------------------------------
  auto ca = CertificateAuthority::create("dc-root", rng);
  const auto sig_key = crypto::ecdsa_keypair_from_seed(rng.generate(32));
  CertChain chain;
  chain.certs.push_back(ca.issue(
      "kv.internal", crypto::encode_point(sig_key.public_key), 0, 1u << 30));

  const auto longterm = crypto::ecdh_keypair_from_seed(rng.generate(32));
  TicketDirectory dns;
  dns.publish(issue_smt_ticket(ca, "kv.internal",
                               crypto::encode_point(longterm.public_key),
                               chain, /*not_before=*/1000,
                               /*not_after=*/1000 + 3600));  // 1 h lifetime
  std::puts("1. SMT-ticket published to the internal DNS directory");

  // --- 2. client: lookup + verify ahead of the connection ----------------
  const auto ticket = dns.lookup("kv.internal");
  const Status valid = verify_smt_ticket(*ticket, ca.public_key(), 2000);
  std::printf("2. client verified ticket: %s\n", valid.ok() ? "OK" : "FAILED");

  // --- 3. 0-RTT handshake with early data --------------------------------
  ZeroRttReplayGuard replay_guard;
  ClientConfig cc;
  cc.server_name = "kv.internal";
  cc.trusted_ca = ca.public_key();
  cc.now = 2000;
  cc.smt_ticket = *ticket;
  cc.early_data = true;
  cc.request_fs = true;  // Init-FS: upgrade to forward secrecy
  cc.op_clock = wall_clock_ns;
  ServerConfig sc;
  sc.chain = chain;
  sc.sig_key = sig_key;
  sc.trusted_ca = ca.public_key();
  sc.now = 2000;
  sc.accept_early_data = true;
  sc.replay_guard = &replay_guard;
  sc.smt_key_lookup = [&](ByteView id) -> std::optional<crypto::EcdhKeyPair> {
    if (to_bytes(id) == ticket->id()) return longterm;
    return std::nullopt;
  };

  ClientHandshake client(cc, rng);
  ServerHandshake server(sc, rng);
  auto flight1 = client.start();

  // Encrypt 0-RTT data under the SMT-key-derived early keys — this data
  // rides the FIRST flight, zero round trips before application bytes.
  RecordProtection early_tx(CipherSuite::aes_128_gcm_sha256,
                            client.secrets().client_early_keys);
  const Bytes zero_rtt = early_tx.seal(
      0, ContentType::application_data,
      to_bytes(std::string_view("GET /hot-key (sent in the first flight)")));
  std::printf("3. client flight 1: %zu B handshake + %zu B encrypted 0-RTT data\n",
              flight1.value().size(), zero_rtt.size());

  auto server_flight = server.on_client_flight(flight1.value());
  RecordProtection early_rx(CipherSuite::aes_128_gcm_sha256,
                            server.secrets().client_early_keys);
  const auto opened = early_rx.open(0, zero_rtt);
  std::printf("   server decrypted 0-RTT data: \"%.*s\"\n",
              int(opened.value().payload.size()), opened.value().payload.data());

  auto flight2 = client.on_server_flight(server_flight.value());
  server.on_client_finished(flight2.value());
  std::printf("4. session established; forward secret: %s\n",
              client.secrets().forward_secret ? "yes (fs-key)" : "no (SMT-key)");

  // --- 5. replayed first flight: 0-RTT refused ----------------------------
  ServerHandshake replay_target(sc, rng);
  auto replay_result = replay_target.on_client_flight(flight1.value());
  std::printf("5. replayed flight: handshake %s, 0-RTT data %s\n",
              replay_result.ok() ? "continues" : "fails",
              replay_target.secrets().early_data_accepted
                  ? "ACCEPTED (bug!)"
                  : "REFUSED (anti-replay, §4.5.3)");

  // Timing comparison: operations removed by the 0-RTT path.
  double init_us = 0;
  for (const auto& [op, us] : client.timings().ops) init_us += us;
  std::printf("\nclient-side crypto work this handshake: %.0f us "
              "(cert verification was done ahead of time via the ticket)\n",
              init_us);
  return 0;
}
