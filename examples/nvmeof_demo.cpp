// Remote block storage demo (the paper's NVMe-oF scenario, §5.4).
//
// A simulated NVMe SSD sits behind an NVMe-oF target; an FIO-style client
// issues 4 KB random reads at increasing iodepth over kTLS and SMT,
// printing P50/P99 latencies (the Figure 9 experiment in miniature).
//
//   $ ./nvmeof_demo
#include <cstdio>

#include "apps/nvmeof.hpp"

using namespace smt;
using namespace smt::apps;

namespace {

std::pair<double, double> run_fio(TransportKind kind, std::size_t iodepth) {
  RpcFabricConfig config;
  config.kind = kind;
  RpcFabric fabric(config);
  NvmeDevice device(fabric.loop(), NvmeDeviceConfig{});
  NvmeTarget target(fabric, device);

  FioConfig fio;
  fio.iodepth = iodepth;
  fio.total_requests = 1000;
  FioClient client(fabric, fio);
  const LatencyStats stats = client.run();
  return {stats.p50() / 1e3, stats.p99() / 1e3};  // microseconds
}

}  // namespace

int main() {
  std::puts("NVMe-oF: 4 KB random reads from a simulated SSD (~55 us media)");
  std::puts("transport  iodepth   P50 [us]   P99 [us]");
  for (const TransportKind kind :
       {TransportKind::ktls_sw, TransportKind::ktls_hw, TransportKind::smt_sw,
        TransportKind::smt_hw}) {
    for (const std::size_t iodepth : {1u, 4u, 8u}) {
      const auto [p50, p99] = run_fio(kind, iodepth);
      std::printf("%-9s  %7zu   %8.1f   %8.1f\n", transport_name(kind),
                  iodepth, p50, p99);
    }
  }
  return 0;
}
